// X2 — Theorem 2 (time, growth in n): at fixed density (Δ ≈ const) the
// decision latency grows like O(Δ log n), i.e. ~logarithmically in n. We fit
// latency against Δ·ln n and report the normalized constant per row; the
// claim's shape holds iff the constant is flat (no super-logarithmic drift).
//
// Trials run through common::SweepEngine: `--threads=N` executes the seeds
// of each size concurrently, with trial i's randomness derived from
// (base seed, i) alone, so the table and the CSV are byte-identical for
// EVERY thread count (CI diffs --threads=1 against --threads=4). Wall time
// is reported separately on stdout / in the sidecar — never in the CSV.
// `--sweep-bench-out=PATH` additionally times the largest size's sweep
// serial-vs-threaded and writes the BENCH_sweep.json baseline (wall times,
// speedup, allocs/slot before/after the zero-allocation slot loop).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/alloc_counter.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/sweep.h"
#include "common/table.h"
#include "core/mw_protocol.h"

namespace {

using namespace sinrcolor;

// Everything the table needs from one trial — results only, no wall time,
// so merged rows are a pure function of (base seed, trial index).
struct TrialResult {
  double delta = 0.0;
  double max_latency = 0.0;
  double mean_latency = 0.0;
  double norm = 0.0;  ///< max latency / (Δ·ln n)
  bool valid = false;
  std::uint64_t slot_allocs = 0;
  std::int64_t slots = 0;
  bool steady_alloc_free = false;
};

}  // namespace

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  const double avg = cli.get_double("avg-degree", 10.0);
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 2));
  const auto base_seed = cli.get_seed("seed", 2);
  const std::string csv_path = cli.get("csv", "");
  const std::string bench_path = cli.get("sweep-bench-out", "");
  core::MwRunConfig base_cfg;
  {
    // --resolve picks each trial's reception path; --threads now belongs to
    // the sweep (trial-level parallelism), so every trial resolves
    // single-threaded — nested pools would oversubscribe the host.
    const std::string resolve = cli.get("resolve", "field");
    if (!sinr::resolve_kind_from_string(resolve, base_cfg.resolve)) {
      std::printf("unknown --resolve=%s (field|naive)\n", resolve.c_str());
      return 2;
    }
  }
  auto threads = static_cast<std::size_t>(cli.get_int("threads", 1));
  if (threads < 1) {
    std::printf("--threads must be >= 1\n");
    return 2;
  }
  bench::MetricsSidecar sidecar(cli);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X2: time vs n (fixed density)",
      "Theorem 2 — time is O(Delta log n): with Delta ~ constant, max "
      "decision latency grows ~ln n; latency/(Delta*ln n) stays flat");

  // The shared RunObservation is not thread-safe; a sidecar-attached sweep
  // must run its trials serially. Sidecar runs are about metrics, not
  // wall-clock, so this costs nothing the sidecar cares about.
  if (sidecar.observation() != nullptr && threads > 1) {
    std::printf("note: --metrics-out forces --threads=1 (shared observation "
                "is single-threaded)\n");
    threads = 1;
  }
  sidecar.set_threads(threads);

  std::vector<std::size_t> sizes{64, 128, 256, 512, 1024};
  if (full) sizes.push_back(2048);

  common::SweepEngine engine(threads);

  // One trial of size n: topology and protocol randomness both derive from
  // the trial's own seed stream, so the result depends only on
  // (base_seed, trial index, n) — not on thread count or execution order.
  const auto run_trial = [&](std::size_t n, const common::TrialContext& ctx,
                             bool attach_sidecar) -> TrialResult {
    const auto g = bench::shared_uniform_graph_with_density(
        n, avg, common::derive_seed(ctx.seed, 0x67));  // 'g' — graph stream
    core::MwRunConfig cfg = base_cfg;
    cfg.seed = ctx.seed;
    core::MwInstance instance(*g, cfg);
    if (attach_sidecar && sidecar.observation() != nullptr) {
      instance.attach_observation(sidecar.observation());
    }
    const auto r = instance.run();
    TrialResult out;
    out.delta = static_cast<double>(g->max_degree());
    out.max_latency = static_cast<double>(r.metrics.max_decision_latency());
    out.mean_latency = r.metrics.mean_decision_latency();
    out.norm = out.max_latency / (out.delta * std::log(static_cast<double>(n)));
    out.valid = r.coloring_valid && r.metrics.all_decided;
    out.slot_allocs = r.metrics.slot_heap_allocs;
    out.slots = r.metrics.slots_executed;
    out.steady_alloc_free = r.metrics.steady_state_alloc_free();
    return out;
  };

  common::Table table({"n", "Delta", "max_latency", "mean_latency",
                       "latency/(Delta*ln n)", "valid"});
  std::vector<double> constants;
  bool all_valid = true;
  bool all_alloc_free = true;
  std::uint64_t total_allocs = 0;
  std::int64_t total_slots = 0;
  common::SweepTiming all_timing;

  for (std::size_t n : sizes) {
    common::SweepTiming timing;
    const auto results = engine.run(
        seeds, common::derive_seed(base_seed, n),
        [&](const common::TrialContext& ctx) {
          return run_trial(n, ctx, /*attach_sidecar=*/true);
        },
        &timing);
    common::Accumulator delta_acc, max_lat, mean_lat, norm;
    for (const TrialResult& r : results) {
      all_valid &= r.valid;
      all_alloc_free &= r.steady_alloc_free;
      total_allocs += r.slot_allocs;
      total_slots += r.slots;
      delta_acc.add(r.delta);
      max_lat.add(r.max_latency);
      mean_lat.add(r.mean_latency);
      norm.add(r.norm);
    }
    constants.push_back(norm.mean());
    table.add_row({common::Table::integer(static_cast<long long>(n)),
                   common::Table::num(delta_acc.mean(), 1),
                   common::Table::num(max_lat.mean(), 0),
                   common::Table::num(mean_lat.mean(), 0),
                   common::Table::num(norm.mean(), 1),
                   all_valid ? "yes" : "NO"});
    std::printf("n=%zu: %zu trials in %.1f ms wall (p50 %.1f ms, p95 %.1f ms "
                "per trial, %zu threads)\n",
                n, seeds, static_cast<double>(timing.total_us) / 1000.0,
                static_cast<double>(timing.p50_us()) / 1000.0,
                static_cast<double>(timing.p95_us()) / 1000.0, threads);
    sidecar.record_trials(timing);
    all_timing.trial_us.insert(all_timing.trial_us.end(),
                               timing.trial_us.begin(), timing.trial_us.end());
    all_timing.total_us += timing.total_us;
  }
  table.print(std::cout);
  if (common::alloc_counting_enabled()) {
    std::printf("slot-loop allocs: %llu over %lld slots (%s)\n",
                static_cast<unsigned long long>(total_allocs),
                static_cast<long long>(total_slots),
                all_alloc_free ? "all runs steady-state alloc-free"
                               : "STEADY-STATE ALLOCATION DETECTED");
  }
  if (!csv_path.empty() && table.write_csv(csv_path)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }

  // BENCH_sweep.json: re-run the largest size serial vs threaded over the
  // identical trial set, verify the results agree, record wall + allocs.
  if (!bench_path.empty()) {
    const std::size_t n = sizes.back();
    const std::size_t bench_threads =
        threads > 1 ? threads
                    : std::max<std::size_t>(
                          2, std::thread::hardware_concurrency());
    const std::uint64_t bench_seed = common::derive_seed(base_seed, n);
    // The benchmark sweeps run without the sidecar attached — the shared
    // observation is single-threaded and would also distort the timing.
    const auto trial = [&](const common::TrialContext& ctx) {
      return run_trial(n, ctx, /*attach_sidecar=*/false);
    };
    common::SweepEngine serial(1);
    common::SweepEngine parallel(bench_threads);
    common::SweepTiming serial_t, parallel_t;
    const auto serial_r = serial.run(seeds, bench_seed, trial, &serial_t);
    const auto parallel_r = parallel.run(seeds, bench_seed, trial, &parallel_t);
    bool identical = serial_r.size() == parallel_r.size();
    std::uint64_t after_allocs = 0;
    std::int64_t after_slots = 0;
    bool steady_free = true;
    for (std::size_t i = 0; identical && i < serial_r.size(); ++i) {
      identical = serial_r[i].max_latency == parallel_r[i].max_latency &&
                  serial_r[i].mean_latency == parallel_r[i].mean_latency &&
                  serial_r[i].valid == parallel_r[i].valid;
      after_allocs += serial_r[i].slot_allocs;
      after_slots += serial_r[i].slots;
      steady_free &= serial_r[i].steady_alloc_free;
    }
    const double speedup =
        parallel_t.total_us > 0
            ? static_cast<double>(serial_t.total_us) /
                  static_cast<double>(parallel_t.total_us)
            : 0.0;
    common::JsonWriter json;
    bench::begin_bench_envelope(json, "x2_sweep_bench", bench_threads);
    json.begin_object();
    json.field("n", n);
    json.field("trials", seeds);
    json.key("serial");
    json.begin_object();
    json.field("threads", 1);
    json.field("wall_us", serial_t.total_us);
    json.field("p50_us", serial_t.p50_us());
    json.field("p95_us", serial_t.p95_us());
    json.end_object();
    json.key("threaded");
    json.begin_object();
    json.field("threads", bench_threads);
    json.field("wall_us", parallel_t.total_us);
    json.field("p50_us", parallel_t.p50_us());
    json.field("p95_us", parallel_t.p95_us());
    json.end_object();
    json.field("speedup", speedup);
    json.field("results_identical", identical);
    json.key("allocs_per_slot");
    json.begin_object();
    json.field("counting_enabled", common::alloc_counting_enabled());
    // Pre-hoist baseline, measured at n=1024 before the slot-loop arena /
    // scratch reserves landed: 169324 allocations over 194054 slots.
    json.field("before", 0.8726);
    json.field("after", after_slots > 0
                            ? static_cast<double>(after_allocs) /
                                  static_cast<double>(after_slots)
                            : 0.0);
    json.field("steady_state_alloc_free", steady_free);
    json.end_object();
    json.end_object();
    bench::end_bench_envelope(json);
    if (!bench::write_atomic(bench_path, json.str(), "sweep bench")) return 2;
    std::printf("sweep bench: serial %.1f ms, %zu threads %.1f ms, "
                "speedup %.2fx, results %s\n",
                static_cast<double>(serial_t.total_us) / 1000.0, bench_threads,
                static_cast<double>(parallel_t.total_us) / 1000.0, speedup,
                identical ? "identical" : "DIFFERENT");
    if (!identical) return bench::print_verdict(false,
        "serial and threaded sweeps disagree");
  }

  // Shape check: the normalized constant must not drift more than ~2.5x
  // across a 16x range of n (log-growth would keep it flat; linear growth in
  // n would blow it up ~16/ln-ratio ≈ 6x).
  double lo = constants.front(), hi = constants.front();
  for (double c : constants) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  std::printf("normalized constant range: [%.1f, %.1f] (ratio %.2f)\n", lo, hi,
              hi / lo);
  sidecar.write("x2_time_vs_n");
  const bool flat = hi / lo < 2.5;
  return bench::print_verdict(all_valid && flat,
                              flat ? "latency tracks Delta*ln n"
                                   : "latency grows faster than Delta*ln n");
}
