// X18 — interference-field fast path (engineering claim, not a paper claim):
// resolving a slot through the shared field F(u) = Σ_j P/δ(u,t_j)^α must
// deliver EXACTLY the same messages as the naive per-(sender, listener)
// resolution, and must be faster — O(T·coverage) versus O(T²·Δ) per slot
// (docs/PERFORMANCE.md). The harness replays identical transmitter sets
// through both paths, verifies delivery equality slot by slot, then times
// each path over the same workload and reports the speedup. FAIL if any
// delivery differs or the field path is slower.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "radio/interference_model.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const double avg = cli.get_double("avg-degree", 64.0);
  const double tx_prob = cli.get_double("tx-prob", 0.25);
  const auto slots = static_cast<std::size_t>(cli.get_int("slots", 40));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto seed = cli.get_seed("seed", 1);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 1));
  bench::MetricsSidecar sidecar(cli);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X18: shared-field resolve vs naive resolve",
      "engineering — the field path delivers identical messages and beats "
      "the per-pair naive path in wall time at n=2000, Delta~64");

  const auto g = bench::uniform_graph_with_density(n, avg, seed);
  const auto phys = bench::phys_for_radius(g.radius());
  const radio::SinrInterferenceModel naive(
      g, phys, {sinr::ResolveKind::kNaive, 1});
  const radio::SinrInterferenceModel field(
      g, phys, {sinr::ResolveKind::kField, threads});

  // Pre-draw every slot's transmitter set so both paths replay the exact
  // same workload (transmitters never listen — half-duplex).
  common::Rng rng(common::derive_seed(seed, 0x18ULL));
  std::vector<std::vector<radio::TxRecord>> slot_txs(slots);
  std::vector<std::vector<bool>> slot_listening(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    slot_listening[t].assign(n, true);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!rng.bernoulli(tx_prob)) continue;
      radio::Message m;
      m.kind = radio::MessageKind::kCompete;
      m.sender = v;
      slot_txs[t].push_back({v, m});
      slot_listening[t][v] = false;
    }
  }

  const auto run_path = [&](const radio::SinrInterferenceModel& model,
                            std::vector<std::vector<std::optional<
                                radio::Message>>>* capture) -> std::uint64_t {
    std::vector<std::optional<radio::Message>> deliveries(n);
    const bench::WallTimer timer;
    for (std::size_t rep = 0; rep < (capture != nullptr ? 1 : reps); ++rep) {
      for (std::size_t t = 0; t < slots; ++t) {
        std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
        model.resolve(static_cast<radio::Slot>(t), slot_txs[t],
                      slot_listening[t], deliveries);
        if (capture != nullptr) capture->push_back(deliveries);
      }
    }
    return timer.elapsed_us();
  };

  // Equality first: both paths must deliver the same (listener, sender)
  // pairs in every slot.
  std::vector<std::vector<std::optional<radio::Message>>> got_naive, got_field;
  run_path(naive, &got_naive);
  run_path(field, &got_field);
  std::size_t deliveries_total = 0, mismatches = 0;
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      const auto& a = got_naive[t][u];
      const auto& b = got_field[t][u];
      deliveries_total += a.has_value();
      if (a.has_value() != b.has_value() ||
          (a.has_value() && a->sender != b->sender)) {
        ++mismatches;
      }
    }
  }

  // Then timing over the identical replayed workload.
  const std::uint64_t naive_us = run_path(naive, nullptr);
  const std::uint64_t field_us = run_path(field, nullptr);
  const double speedup = field_us > 0
                             ? static_cast<double>(naive_us) /
                                   static_cast<double>(field_us)
                             : 0.0;

  common::Table table(
      {"path", "threads", "slots", "wall_us", "us/slot", "deliveries"});
  const auto total_slots = static_cast<double>(slots * reps);
  table.add_row({"naive", "1",
                 common::Table::integer(static_cast<long long>(slots * reps)),
                 common::Table::integer(static_cast<long long>(naive_us)),
                 common::Table::num(static_cast<double>(naive_us) / total_slots,
                                    1),
                 common::Table::integer(
                     static_cast<long long>(deliveries_total))});
  table.add_row({"field", common::Table::integer(
                              static_cast<long long>(threads)),
                 common::Table::integer(static_cast<long long>(slots * reps)),
                 common::Table::integer(static_cast<long long>(field_us)),
                 common::Table::num(static_cast<double>(field_us) / total_slots,
                                    1),
                 common::Table::integer(
                     static_cast<long long>(deliveries_total))});
  table.print(std::cout);
  std::printf("n=%zu Delta=%zu avg_deg=%.1f tx_prob=%.2f\n", g.size(),
              g.max_degree(), g.average_degree(), tx_prob);
  std::printf("delivery mismatches: %zu / %zu deliveries\n", mismatches,
              deliveries_total);
  std::printf("speedup: %.2fx (field over naive)\n", speedup);

  if (sidecar.observation() != nullptr) {
    auto& m = sidecar.observation()->metrics;
    m.counter("x18.naive_us").add(naive_us);
    m.counter("x18.field_us").add(field_us);
    m.counter("x18.speedup_permille")
        .add(static_cast<std::uint64_t>(speedup * 1000.0));
    m.counter("x18.deliveries").add(deliveries_total);
    m.counter("x18.mismatches").add(mismatches);
    m.counter("x18.threads").add(threads);
    m.counter("x18.n").add(n);
  }
  sidecar.write("x18_resolve_field");

  const bool equal = mismatches == 0;
  const bool faster = field_us < naive_us;
  return bench::print_verdict(
      equal && faster,
      !equal ? "field path delivered different messages than naive"
             : (faster ? "identical deliveries, field path faster"
                       : "identical deliveries but field path is SLOWER"));
}
