// X18 — interference-field fast paths (engineering claim, not a paper claim):
// resolving a slot through the shared field F(u) = Σ_j P/δ(u,t_j)^α must
// deliver EXACTLY the same messages as the naive per-(sender, listener)
// resolution, and must be faster — O(T·coverage) versus O(T²·Δ) per slot
// (docs/PERFORMANCE.md). Three-way harness: naive (the oracle), field (the
// scalar per-listener loop) and simd (the SoA batch kernel with batched
// Kahan — docs/KERNELS.md) replay identical transmitter sets; delivery
// equality is verified slot by slot across all three, then each path is
// timed over the same workload. FAIL if any delivery differs, the field path
// is not faster than naive, or the simd path is not faster than field.
//
// The timing reps run through common::SweepEngine (`--sweep-threads=N`,
// per-rep p50/p95 in the sidecar): each rep owns its model instances (their
// resolve scratch is reusable but not shareable) while the topology comes
// from the shared cache. The rep loop also audits the zero-allocation
// contract: after the first slot sizes the scratch, resolves allocate
// nothing — for the simd path that includes the SoA arrays and the coverage
// candidate CSR.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/alloc_counter.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/sweep.h"
#include "common/table.h"
#include "radio/interference_model.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const double avg = cli.get_double("avg-degree", 64.0);
  const double tx_prob = cli.get_double("tx-prob", 0.25);
  const auto slots = static_cast<std::size_t>(cli.get_int("slots", 40));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto seed = cli.get_seed("seed", 1);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 1));
  const std::size_t sweep_threads = bench::sweep_threads(cli);
  bench::MetricsSidecar sidecar(cli);
  sidecar.set_threads(threads);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X18: naive vs field vs simd resolve",
      "engineering — the field paths deliver identical messages; field beats "
      "naive and the simd kernel beats field in wall time at n=2000, "
      "Delta~64");

  const auto g = bench::shared_uniform_graph_with_density(n, avg, seed);
  const auto phys = bench::phys_for_radius(g->radius());

  // Pre-draw every slot's transmitter set so all paths replay the exact
  // same workload (transmitters never listen — half-duplex).
  common::Rng rng(common::derive_seed(seed, 0x18ULL));
  std::vector<std::vector<radio::TxRecord>> slot_txs(slots);
  std::vector<std::vector<bool>> slot_listening(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    slot_listening[t].assign(n, true);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!rng.bernoulli(tx_prob)) continue;
      radio::Message m;
      m.kind = radio::MessageKind::kCompete;
      m.sender = v;
      slot_txs[t].push_back({v, m});
      slot_listening[t][v] = false;
    }
  }

  const auto model_threads = [&](sinr::ResolveKind kind) {
    return kind == sinr::ResolveKind::kNaive ? std::size_t{1} : threads;
  };

  // One timed pass over the replayed workload with a fresh model (`kind`,
  // resolve thread count as configured). Returns the allocations the resolve
  // loop performed after its first slot — the steady-state number, which the
  // scratch reserves must hold at zero.
  struct PassResult {
    std::uint64_t steady_allocs = 0;
  };
  const auto timed_pass = [&](sinr::ResolveKind kind) -> PassResult {
    const radio::SinrInterferenceModel model(*g, phys,
                                             {kind, model_threads(kind)});
    std::vector<std::optional<radio::Message>> deliveries(n);
    PassResult out;
    for (std::size_t t = 0; t < slots; ++t) {
      std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
      const std::uint64_t before = common::thread_heap_allocs();
      model.resolve(static_cast<radio::Slot>(t), slot_txs[t],
                    slot_listening[t], deliveries);
      if (t > 0) out.steady_allocs += common::thread_heap_allocs() - before;
    }
    return out;
  };

  // Equality first: every path must deliver the same (listener, sender)
  // pairs in every slot. Naive is the oracle both fast paths compare to.
  const auto capture_pass = [&](sinr::ResolveKind kind) {
    const radio::SinrInterferenceModel model(*g, phys,
                                             {kind, model_threads(kind)});
    std::vector<std::vector<std::optional<radio::Message>>> got;
    std::vector<std::optional<radio::Message>> deliveries(n);
    for (std::size_t t = 0; t < slots; ++t) {
      std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
      model.resolve(static_cast<radio::Slot>(t), slot_txs[t],
                    slot_listening[t], deliveries);
      got.push_back(deliveries);
    }
    return got;
  };
  const auto got_naive = capture_pass(sinr::ResolveKind::kNaive);
  const auto got_field = capture_pass(sinr::ResolveKind::kField);
  const auto got_simd = capture_pass(sinr::ResolveKind::kSimd);
  const auto count_mismatches = [&](const auto& a_pass, const auto& b_pass) {
    std::size_t bad = 0;
    for (std::size_t t = 0; t < slots; ++t) {
      for (std::size_t u = 0; u < n; ++u) {
        const auto& a = a_pass[t][u];
        const auto& b = b_pass[t][u];
        if (a.has_value() != b.has_value() ||
            (a.has_value() && a->sender != b->sender)) {
          ++bad;
        }
      }
    }
    return bad;
  };
  std::size_t deliveries_total = 0;
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      deliveries_total += got_naive[t][u].has_value();
    }
  }
  const std::size_t field_mismatches = count_mismatches(got_naive, got_field);
  const std::size_t simd_mismatches = count_mismatches(got_naive, got_simd);
  const std::size_t mismatches = field_mismatches + simd_mismatches;

  // Then timing: `reps` independent passes per path through the sweep
  // engine. Per-rep wall times feed the sidecar's p50/p95; the printed
  // wall_us is the per-rep p50 (robust against a noisy neighbor rep).
  common::SweepEngine engine(sweep_threads);
  struct PathTiming {
    common::SweepTiming timing;
    std::uint64_t steady_allocs = 0;
  };
  const auto time_path = [&](sinr::ResolveKind kind,
                             std::uint64_t salt) -> PathTiming {
    PathTiming out;
    const auto results = engine.run(
        reps, common::derive_seed(seed, salt),
        [&](const common::TrialContext&) { return timed_pass(kind); },
        &out.timing);
    for (const PassResult& r : results) out.steady_allocs += r.steady_allocs;
    return out;
  };
  const PathTiming naive_pt = time_path(sinr::ResolveKind::kNaive, 0xA);
  const PathTiming field_pt = time_path(sinr::ResolveKind::kField, 0xB);
  const PathTiming simd_pt = time_path(sinr::ResolveKind::kSimd, 0xC);
  sidecar.record_trials(naive_pt.timing);
  sidecar.record_trials(field_pt.timing);
  sidecar.record_trials(simd_pt.timing);
  const std::uint64_t naive_us = naive_pt.timing.p50_us();
  const std::uint64_t field_us = field_pt.timing.p50_us();
  const std::uint64_t simd_us = simd_pt.timing.p50_us();
  const auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
  };
  const double speedup_field = ratio(naive_us, field_us);       // field/naive
  const double speedup_simd_field = ratio(field_us, simd_us);   // simd/field
  const double speedup_simd_naive = ratio(naive_us, simd_us);   // simd/naive

  common::Table table(
      {"path", "threads", "slots/rep", "p50_wall_us", "us/slot", "deliveries"});
  const auto slots_d = static_cast<double>(slots);
  const auto add_path_row = [&](const char* name, std::size_t t_count,
                                std::uint64_t us) {
    table.add_row({name, common::Table::integer(static_cast<long long>(t_count)),
                   common::Table::integer(static_cast<long long>(slots)),
                   common::Table::integer(static_cast<long long>(us)),
                   common::Table::num(static_cast<double>(us) / slots_d, 1),
                   common::Table::integer(
                       static_cast<long long>(deliveries_total))});
  };
  add_path_row("naive", 1, naive_us);
  add_path_row("field", threads, field_us);
  add_path_row("simd", threads, simd_us);
  table.print(std::cout);
  std::printf("n=%zu Delta=%zu avg_deg=%.1f tx_prob=%.2f reps=%zu "
              "sweep_threads=%zu\n",
              g->size(), g->max_degree(), g->average_degree(), tx_prob, reps,
              sweep_threads);
  std::printf("delivery mismatches: field=%zu simd=%zu / %zu deliveries\n",
              field_mismatches, simd_mismatches, deliveries_total);
  std::printf("speedup: field %.2fx over naive, simd %.2fx over field "
              "(%.2fx over naive), per-rep p50\n",
              speedup_field, speedup_simd_field, speedup_simd_naive);
  const bool alloc_free = !common::alloc_counting_enabled() ||
                          (naive_pt.steady_allocs == 0 &&
                           field_pt.steady_allocs == 0 &&
                           simd_pt.steady_allocs == 0);
  if (common::alloc_counting_enabled()) {
    std::printf(
        "steady-state resolve allocs: naive=%llu field=%llu simd=%llu (%s)\n",
        static_cast<unsigned long long>(naive_pt.steady_allocs),
        static_cast<unsigned long long>(field_pt.steady_allocs),
        static_cast<unsigned long long>(simd_pt.steady_allocs),
        alloc_free ? "alloc-free after first slot" : "ALLOCATING");
  }

  if (sidecar.observation() != nullptr) {
    auto& m = sidecar.observation()->metrics;
    m.counter("x18.naive_us").add(naive_us);
    m.counter("x18.field_us").add(field_us);
    m.counter("x18.simd_us").add(simd_us);
    // Legacy two-way key (field over naive) plus the per-kind ratios.
    m.counter("x18.speedup_permille")
        .add(static_cast<std::uint64_t>(speedup_field * 1000.0));
    m.counter("x18.speedup_vs_field_permille")
        .add(static_cast<std::uint64_t>(speedup_simd_field * 1000.0));
    m.counter("x18.speedup_vs_naive_permille")
        .add(static_cast<std::uint64_t>(speedup_simd_naive * 1000.0));
    m.counter("x18.deliveries").add(deliveries_total);
    m.counter("x18.mismatches").add(mismatches);
    m.counter("x18.simd_mismatches").add(simd_mismatches);
    m.counter("x18.threads").add(threads);
    m.counter("x18.n").add(n);
    m.counter("x18.steady_allocs")
        .add(naive_pt.steady_allocs + field_pt.steady_allocs +
             simd_pt.steady_allocs);
  }
  sidecar.write("x18_resolve_field");

  const bool equal = mismatches == 0;
  const bool field_faster = field_us < naive_us;
  const bool simd_faster = simd_us < field_us;
  return bench::print_verdict(
      equal && field_faster && simd_faster && alloc_free,
      !equal ? "a fast path delivered different messages than naive"
             : (!field_faster
                    ? "identical deliveries but field path is SLOWER than naive"
                    : (!simd_faster
                           ? "identical deliveries but simd kernel is SLOWER "
                             "than field"
                           : (alloc_free
                                  ? "identical deliveries, field beats naive, "
                                    "simd beats field, steady-state alloc-free"
                                  : "resolve allocated in steady state"))));
}
