// X18 — interference-field fast path (engineering claim, not a paper claim):
// resolving a slot through the shared field F(u) = Σ_j P/δ(u,t_j)^α must
// deliver EXACTLY the same messages as the naive per-(sender, listener)
// resolution, and must be faster — O(T·coverage) versus O(T²·Δ) per slot
// (docs/PERFORMANCE.md). The harness replays identical transmitter sets
// through both paths, verifies delivery equality slot by slot, then times
// each path over the same workload and reports the speedup. FAIL if any
// delivery differs or the field path is slower.
//
// The timing reps run through common::SweepEngine (`--sweep-threads=N`,
// per-rep p50/p95 in the sidecar): each rep owns its model instances (their
// resolve scratch is reusable but not shareable) while the topology comes
// from the shared cache. The rep loop also audits the zero-allocation
// contract: after the first slot sizes the scratch, resolves allocate
// nothing.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/alloc_counter.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/sweep.h"
#include "common/table.h"
#include "radio/interference_model.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const double avg = cli.get_double("avg-degree", 64.0);
  const double tx_prob = cli.get_double("tx-prob", 0.25);
  const auto slots = static_cast<std::size_t>(cli.get_int("slots", 40));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto seed = cli.get_seed("seed", 1);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 1));
  const std::size_t sweep_threads = bench::sweep_threads(cli);
  bench::MetricsSidecar sidecar(cli);
  sidecar.set_threads(threads);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X18: shared-field resolve vs naive resolve",
      "engineering — the field path delivers identical messages and beats "
      "the per-pair naive path in wall time at n=2000, Delta~64");

  const auto g = bench::shared_uniform_graph_with_density(n, avg, seed);
  const auto phys = bench::phys_for_radius(g->radius());

  // Pre-draw every slot's transmitter set so both paths replay the exact
  // same workload (transmitters never listen — half-duplex).
  common::Rng rng(common::derive_seed(seed, 0x18ULL));
  std::vector<std::vector<radio::TxRecord>> slot_txs(slots);
  std::vector<std::vector<bool>> slot_listening(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    slot_listening[t].assign(n, true);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!rng.bernoulli(tx_prob)) continue;
      radio::Message m;
      m.kind = radio::MessageKind::kCompete;
      m.sender = v;
      slot_txs[t].push_back({v, m});
      slot_listening[t][v] = false;
    }
  }

  // One timed pass over the replayed workload with a fresh model (`kind`,
  // resolve thread count as configured). Returns the allocations the resolve
  // loop performed after its first slot — the steady-state number, which the
  // scratch reserves must hold at zero.
  struct PassResult {
    std::uint64_t steady_allocs = 0;
  };
  const auto timed_pass = [&](sinr::ResolveKind kind) -> PassResult {
    const radio::SinrInterferenceModel model(
        *g, phys,
        {kind, kind == sinr::ResolveKind::kField ? threads : 1});
    std::vector<std::optional<radio::Message>> deliveries(n);
    PassResult out;
    for (std::size_t t = 0; t < slots; ++t) {
      std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
      const std::uint64_t before = common::thread_heap_allocs();
      model.resolve(static_cast<radio::Slot>(t), slot_txs[t],
                    slot_listening[t], deliveries);
      if (t > 0) out.steady_allocs += common::thread_heap_allocs() - before;
    }
    return out;
  };

  // Equality first: both paths must deliver the same (listener, sender)
  // pairs in every slot.
  const auto capture_pass = [&](sinr::ResolveKind kind) {
    const radio::SinrInterferenceModel model(
        *g, phys,
        {kind, kind == sinr::ResolveKind::kField ? threads : 1});
    std::vector<std::vector<std::optional<radio::Message>>> got;
    std::vector<std::optional<radio::Message>> deliveries(n);
    for (std::size_t t = 0; t < slots; ++t) {
      std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
      model.resolve(static_cast<radio::Slot>(t), slot_txs[t],
                    slot_listening[t], deliveries);
      got.push_back(deliveries);
    }
    return got;
  };
  const auto got_naive = capture_pass(sinr::ResolveKind::kNaive);
  const auto got_field = capture_pass(sinr::ResolveKind::kField);
  std::size_t deliveries_total = 0, mismatches = 0;
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t u = 0; u < n; ++u) {
      const auto& a = got_naive[t][u];
      const auto& b = got_field[t][u];
      deliveries_total += a.has_value();
      if (a.has_value() != b.has_value() ||
          (a.has_value() && a->sender != b->sender)) {
        ++mismatches;
      }
    }
  }

  // Then timing: `reps` independent passes per path through the sweep
  // engine. Per-rep wall times feed the sidecar's p50/p95; the printed
  // wall_us is the per-rep p50 (robust against a noisy neighbor rep).
  common::SweepEngine engine(sweep_threads);
  common::SweepTiming naive_t, field_t;
  std::uint64_t naive_steady_allocs = 0, field_steady_allocs = 0;
  {
    const auto results = engine.run(
        reps, common::derive_seed(seed, 0xA),
        [&](const common::TrialContext&) {
          return timed_pass(sinr::ResolveKind::kNaive);
        },
        &naive_t);
    for (const PassResult& r : results) naive_steady_allocs += r.steady_allocs;
  }
  {
    const auto results = engine.run(
        reps, common::derive_seed(seed, 0xB),
        [&](const common::TrialContext&) {
          return timed_pass(sinr::ResolveKind::kField);
        },
        &field_t);
    for (const PassResult& r : results) field_steady_allocs += r.steady_allocs;
  }
  sidecar.record_trials(naive_t);
  sidecar.record_trials(field_t);
  const std::uint64_t naive_us = naive_t.p50_us();
  const std::uint64_t field_us = field_t.p50_us();
  const double speedup = field_us > 0
                             ? static_cast<double>(naive_us) /
                                   static_cast<double>(field_us)
                             : 0.0;

  common::Table table(
      {"path", "threads", "slots/rep", "p50_wall_us", "us/slot", "deliveries"});
  const auto slots_d = static_cast<double>(slots);
  table.add_row({"naive", "1",
                 common::Table::integer(static_cast<long long>(slots)),
                 common::Table::integer(static_cast<long long>(naive_us)),
                 common::Table::num(static_cast<double>(naive_us) / slots_d, 1),
                 common::Table::integer(
                     static_cast<long long>(deliveries_total))});
  table.add_row({"field", common::Table::integer(
                              static_cast<long long>(threads)),
                 common::Table::integer(static_cast<long long>(slots)),
                 common::Table::integer(static_cast<long long>(field_us)),
                 common::Table::num(static_cast<double>(field_us) / slots_d, 1),
                 common::Table::integer(
                     static_cast<long long>(deliveries_total))});
  table.print(std::cout);
  std::printf("n=%zu Delta=%zu avg_deg=%.1f tx_prob=%.2f reps=%zu "
              "sweep_threads=%zu\n",
              g->size(), g->max_degree(), g->average_degree(), tx_prob, reps,
              sweep_threads);
  std::printf("delivery mismatches: %zu / %zu deliveries\n", mismatches,
              deliveries_total);
  std::printf("speedup: %.2fx (field over naive, per-rep p50)\n", speedup);
  const bool alloc_free =
      !common::alloc_counting_enabled() ||
      (naive_steady_allocs == 0 && field_steady_allocs == 0);
  if (common::alloc_counting_enabled()) {
    std::printf("steady-state resolve allocs: naive=%llu field=%llu (%s)\n",
                static_cast<unsigned long long>(naive_steady_allocs),
                static_cast<unsigned long long>(field_steady_allocs),
                alloc_free ? "alloc-free after first slot" : "ALLOCATING");
  }

  if (sidecar.observation() != nullptr) {
    auto& m = sidecar.observation()->metrics;
    m.counter("x18.naive_us").add(naive_us);
    m.counter("x18.field_us").add(field_us);
    m.counter("x18.speedup_permille")
        .add(static_cast<std::uint64_t>(speedup * 1000.0));
    m.counter("x18.deliveries").add(deliveries_total);
    m.counter("x18.mismatches").add(mismatches);
    m.counter("x18.threads").add(threads);
    m.counter("x18.n").add(n);
    m.counter("x18.steady_allocs")
        .add(naive_steady_allocs + field_steady_allocs);
  }
  sidecar.write("x18_resolve_field");

  const bool equal = mismatches == 0;
  const bool faster = field_us < naive_us;
  return bench::print_verdict(
      equal && faster && alloc_free,
      !equal ? "field path delivered different messages than naive"
             : (!faster ? "identical deliveries but field path is SLOWER"
                        : (alloc_free
                               ? "identical deliveries, field path faster, "
                                 "steady-state alloc-free"
                               : "resolve allocated in steady state")));
}
