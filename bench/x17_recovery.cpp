// X17 — the self-healing layer (src/robust) closes X14's liveness gap.
//
// X14 measured the damage of crash-stop failures under the plain protocol:
// safety is local (decided colors never conflict), but a leader that dies
// while serving its cluster permanently stalls the requesters it orphaned —
// a requester in state R can only be released by ITS leader's assignment.
// Random early kills rarely hit that window, so the baseline scenario here
// constructs it deterministically with X14's replay technique: probe a clean
// run, find the slot each member enters R, and kill its leader right after.
//
// Three scenarios, each baseline (core::run_mw_coloring, no recovery) vs
// recovery (robust::run_recovering_mw, failure detector + failover + joins):
//   * "10% early (listen phase)"  — X14's scenario verbatim; nobody has
//     committed to a leader yet, so both modes should finish stall-free.
//   * "leaders killed while serving" — up to 10% of the nodes, all of them
//     leaders with at least one committed requester, die right after their
//     first member enters R. The baseline stalls; recovery must not.
//   * "10% join after convergence" — ⌈0.1·n⌉ late arrivals wake into the
//     converged network, listen, pick a free color and repair collisions.
// Validity is always judged on live nodes (a corpse's stale color is not on
// the air; a joiner cannot have heard it).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "graph/coloring.h"
#include "robust/recovery_protocol.h"

namespace {

using namespace sinrcolor;

// (1,·)-validity restricted to nodes alive at the end of the run.
bool live_coloring_valid(const graph::UnitDiskGraph& g,
                         const core::MwRunResult& r) {
  graph::Coloring live = r.coloring;
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (r.metrics.death_slot[v] >= 0) live.color[v] = graph::kUncolored;
    else if (live.color[v] == graph::kUncolored) return false;
  }
  for (const auto& violation : graph::find_coloring_violations(g, live)) {
    if (violation.u != violation.v) return false;
  }
  return true;
}

struct TargetedKills {
  std::vector<graph::NodeId> victims;
  std::vector<radio::Slot> slots;
  radio::Slot clean_slots = 0;  ///< clean-run convergence time
};

// Probe a clean run and schedule up to ⌈0.1·n⌉ leader kills, each one slot
// after the leader's first member committed to it (entered state R).
TargetedKills plan_leader_kills(const graph::UnitDiskGraph& g,
                                const core::MwRunConfig& cfg) {
  const std::size_t n = g.size();
  core::MwInstance probe(g, cfg);
  const auto& nodes = probe.nodes();
  std::vector<radio::Slot> request_entry(n, -1);
  probe.simulator().add_observer(
      [&](radio::Slot slot, std::span<const radio::TxRecord>) {
        for (std::size_t v = 0; v < n; ++v) {
          if (request_entry[v] < 0 &&
              nodes[v]->state() == core::MwStateKind::kRequesting) {
            request_entry[v] = slot;
          }
        }
      });
  const auto clean = probe.run();

  // Earliest commit slot per leader.
  std::vector<radio::Slot> first_request(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (request_entry[v] < 0) continue;
    const graph::NodeId leader = nodes[v]->leader();
    if (leader == graph::kInvalidNode) continue;
    if (first_request[leader] < 0 || request_entry[v] < first_request[leader]) {
      first_request[leader] = request_entry[v];
    }
  }
  std::vector<graph::NodeId> serving_leaders;
  for (graph::NodeId leader : clean.leaders) {
    if (first_request[leader] >= 0) serving_leaders.push_back(leader);
  }
  std::sort(serving_leaders.begin(), serving_leaders.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return first_request[a] < first_request[b];
            });

  TargetedKills plan;
  plan.clean_slots = clean.metrics.slots_executed;
  const auto quota = static_cast<std::size_t>((n + 9) / 10);  // ⌈0.1·n⌉
  for (graph::NodeId leader : serving_leaders) {
    if (plan.victims.size() >= quota) break;
    plan.victims.push_back(leader);
    plan.slots.push_back(first_request[leader] + 2);
  }
  return plan;
}

struct Tally {
  common::Accumulator killed, stalled, recovered;
  std::size_t invalid_runs = 0;
  void add(const graph::UnitDiskGraph& g, const core::MwRunResult& r) {
    killed.add(static_cast<double>(r.metrics.failed_nodes));
    stalled.add(static_cast<double>(r.metrics.stalled_nodes));
    recovered.add(static_cast<double>(r.recovery.recovered_nodes));
    if (!live_coloring_valid(g, r)) ++invalid_runs;
  }
};

void add_rows(common::Table& table, const char* scenario, const Tally& baseline,
              const Tally& recovery, std::uint64_t seeds) {
  const auto row = [&](const char* mode, const Tally& t) {
    table.add_row({scenario, mode, common::Table::num(t.killed.mean(), 1),
                   common::Table::num(t.stalled.mean(), 1),
                   common::Table::num(t.recovered.mean(), 1),
                   t.invalid_runs == 0 ? "yes" : "NO",
                   common::Table::integer(static_cast<long long>(seeds))});
  };
  row("baseline", baseline);
  row("recovery", recovery);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 200));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  bench::MetricsSidecar sidecar(cli);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X17: failure recovery and dynamic joins (vs X14's baseline)",
      "the failure detector + leader failover drive X14's stalled-survivor "
      "count to zero, and late joiners obtain a valid color online");

  Tally early_base, early_rec, serving_base, serving_rec, join_rec;
  common::Accumulator join_conflicts, join_fallbacks, joined;

  for (std::uint64_t s = 0; s < seeds; ++s) {
    const auto g = bench::uniform_graph_with_density(n, 14.0, 35000 + s);
    core::MwRunConfig cfg;
    cfg.seed = 71000 + s;

    // Shared probe: clean convergence time + the targeted kill schedule.
    const TargetedKills plan = plan_leader_kills(g, cfg);
    const radio::Slot cap = 5 * plan.clean_slots;

    // --- scenario 1: X14's "10% early (listen phase)", verbatim ---
    {
      core::MwRunConfig early = cfg;
      early.max_slots = cap;
      early.failure_fraction = 0.10;
      core::MwInstance probe(g, cfg);
      early.failure_window = static_cast<radio::Slot>(
          0.02 * static_cast<double>(probe.params().recommended_max_slots()) /
          40.0);
      early_base.add(g, core::run_mw_coloring(g, early));
      early.recovery.enabled = true;
      early_rec.add(g, robust::run_recovering_mw(g, early));
    }

    // --- scenario 2: leaders killed right after a member commits ---
    {
      core::MwRunConfig targeted = cfg;
      targeted.max_slots = cap;
      {
        core::MwInstance baseline(g, targeted);
        for (std::size_t k = 0; k < plan.victims.size(); ++k) {
          baseline.simulator().set_failure_slot(plan.victims[k], plan.slots[k]);
        }
        serving_base.add(g, baseline.run());
      }
      {
        targeted.recovery.enabled = true;
        robust::RecoveryInstance recovery(g, targeted);
        if (sidecar.observation() != nullptr) {
          recovery.attach_observation(sidecar.observation());
        }
        for (std::size_t k = 0; k < plan.victims.size(); ++k) {
          recovery.simulator().set_failure_slot(plan.victims[k], plan.slots[k]);
        }
        serving_rec.add(g, recovery.run());
      }
    }

    // --- scenario 3: 10% of the nodes join the converged network ---
    {
      core::MwRunConfig churn = cfg;
      churn.max_slots = cap;
      churn.recovery.enabled = true;
      churn.recovery.join_fraction = 0.10;
      churn.recovery.join_at = plan.clean_slots + 500;
      churn.recovery.join_window = 200;
      const auto r = robust::run_recovering_mw(g, churn);
      join_rec.add(g, r);
      joined.add(static_cast<double>(r.recovery.joined_nodes));
      join_conflicts.add(static_cast<double>(r.recovery.join_conflicts_repaired));
      join_fallbacks.add(static_cast<double>(r.recovery.join_fallbacks));
    }
  }

  common::Table table({"scenario", "mode", "killed(avg)", "stalled(avg)",
                       "recovered(avg)", "live-valid", "runs"});
  add_rows(table, "10% early (listen phase)", early_base, early_rec, seeds);
  add_rows(table, "leaders killed while serving", serving_base, serving_rec,
           seeds);
  table.add_row({"10% join after convergence", "recovery",
                 common::Table::num(join_rec.killed.mean(), 1),
                 common::Table::num(join_rec.stalled.mean(), 1),
                 common::Table::num(join_rec.recovered.mean(), 1),
                 join_rec.invalid_runs == 0 ? "yes" : "NO",
                 common::Table::integer(static_cast<long long>(seeds))});
  table.print(std::cout);
  std::printf(
      "joins: %.1f arrivals/run, %.1f collisions repaired, %.1f fell back to "
      "the full protocol\n",
      joined.mean(), join_conflicts.mean(), join_fallbacks.mean());

  sidecar.write("x17_recovery");
  const bool baseline_stalls = serving_base.stalled.mean() > 0.0;
  const bool recovery_clears = early_rec.stalled.mean() == 0.0 &&
                               serving_rec.stalled.mean() == 0.0 &&
                               join_rec.stalled.mean() == 0.0;
  const bool all_valid = early_rec.invalid_runs == 0 &&
                         serving_rec.invalid_runs == 0 &&
                         join_rec.invalid_runs == 0;
  return bench::print_verdict(
      baseline_stalls && recovery_clears && all_valid,
      "the no-recovery baseline stalls orphaned requesters; with recovery "
      "enabled every survivor and every joiner ends with a valid color");
}
