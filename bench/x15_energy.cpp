// X15 — energy accounting (sensor-network cost model, beyond the paper).
// The MW protocol is *listening-dominated*: q_s = q_ℓ/Δ keeps transmissions
// rare while nodes stay awake for Θ(Δ log n) slots, so radio-on time — not
// transmit count — is the battery cost of initialization. We report per-node
// energy versus Δ and the tx/listen split, and compare against the
// schedule-free ALOHA local-broadcast baseline.
#include <cstdio>
#include <iostream>

#include "baseline/local_broadcast.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 220));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 2));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X15: energy accounting of initialization",
      "the coloring's battery cost is Theta(Delta log n) radio-on slots per "
      "node, overwhelmingly listening (q_s = q_l/Delta keeps tx rare)");

  const radio::EnergyModel energy;
  const auto phys = bench::phys_for_radius(1.0);

  common::Table table({"avg_deg", "Delta", "mean energy/node",
                       "max energy/node", "tx share", "energy/(Delta*ln n)"});
  std::vector<double> norm_constants;
  bool all_valid = true;

  for (double avg : {6.0, 12.0, 18.0, 24.0}) {
    common::Accumulator delta_acc, mean_energy, max_energy, tx_share, norm;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, avg, 37000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 83000 + s;
      const auto r = core::run_mw_coloring(g, cfg);
      all_valid &= r.coloring_valid && r.metrics.all_decided;

      const double total = energy.total_energy(r.metrics);
      double tx_energy = 0.0;
      for (std::size_t v = 0; v < g.size(); ++v) {
        tx_energy += static_cast<double>(r.metrics.tx_count[v]) *
                     energy.tx_cost;
      }
      const double per_node = total / static_cast<double>(g.size());
      delta_acc.add(static_cast<double>(g.max_degree()));
      mean_energy.add(per_node);
      max_energy.add(energy.max_node_energy(r.metrics));
      tx_share.add(tx_energy / total);
      norm.add(per_node / (static_cast<double>(g.max_degree()) *
                           std::log(static_cast<double>(n))));
    }
    norm_constants.push_back(norm.mean());
    table.add_row({common::Table::num(avg, 0),
                   common::Table::num(delta_acc.mean(), 1),
                   common::Table::num(mean_energy.mean(), 0),
                   common::Table::num(max_energy.mean(), 0),
                   common::Table::percent(tx_share.mean(), 2),
                   common::Table::num(norm.mean(), 1)});
  }
  table.print(std::cout);

  // ALOHA comparison: one local-broadcast round (no coloring payoff, but the
  // natural "just talk" alternative people reach for).
  {
    common::Accumulator aloha_energy;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 18.0, 37000 + s);
      const auto a = baseline::run_local_broadcast_known_delta(g, phys, 0.3,
                                                               3.0, 89000 + s);
      // Every pending node is awake each slot; approximate per-node energy
      // as slots·listen + tx·(tx−listen).
      const double total =
          static_cast<double>(a.slots) * energy.listen_cost *
              static_cast<double>(g.size()) +
          static_cast<double>(a.transmissions) *
              (energy.tx_cost - energy.listen_cost);
      aloha_energy.add(total / static_cast<double>(g.size()));
    }
    std::printf(
        "ALOHA local broadcast (one round, no reusable schedule): ~%.0f "
        "energy/node — the coloring costs more once but buys a permanent "
        "interference-free TDMA schedule.\n",
        aloha_energy.mean());
  }

  // Shape checks: energy tracks Delta*ln n within a flat constant band, and
  // listening dominates (tx share well under 10%).
  double lo = norm_constants.front(), hi = norm_constants.front();
  for (double c : norm_constants) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  const bool flat = hi / lo < 2.5;
  return bench::print_verdict(all_valid && flat,
                              "energy per node tracks Delta*ln n; listening "
                              "dominates the budget");
}
