// X6 — Theorem 3: a (d+1, V)-coloring with d = (32·(α−1)/(α−2)·β)^{1/α}
// schedules an interference-FREE TDMA MAC under SINR, while distance-1 and
// distance-2 colorings (the latter sufficient in the graph model) are not.
// The crossover between distance-2 and distance-(d+1) is the experiment's
// headline shape; ALOHA shows what no schedule at all costs.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "baseline/aloha.h"
#include "baseline/greedy_coloring.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 300));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X6: TDMA MAC delivery vs coloring distance",
      "Theorem 3 — distance-(d+1) coloring => 100% delivery under SINR; "
      "distance-2 suffices only in the graph model; distance-1 fails in both");

  const auto phys = bench::phys_for_radius(1.0);
  const double d = phys.mac_distance_d();
  std::printf("alpha=%.1f beta=%.1f => d=%.3f (schedule needs distance-%.3f)\n",
              phys.alpha, phys.beta, d, d + 1.0);

  common::Table table({"coloring", "frame(V)", "graph-model", "SINR",
                       "SINR 100%-runs"});
  double sinr_rate_d2 = 0.0;
  bool d1_fails = true, dfull_perfect = true, d2_graph_perfect = true;

  for (double dist : {1.0, 2.0, d + 1.0}) {
    common::Accumulator frame, graph_rate, sinr_rate;
    std::size_t perfect = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 16.0, 8000 + s);
      const auto coloring = baseline::greedy_distance_d_coloring(g, dist);
      const auto schedule = mac::TdmaSchedule::from_coloring(coloring);
      const auto ga = mac::audit_tdma_graph_model(g, schedule);
      const auto sa = mac::audit_tdma_sinr(g, phys, schedule);
      frame.add(schedule.frame_length());
      graph_rate.add(ga.delivery_rate());
      sinr_rate.add(sa.delivery_rate());
      perfect += sa.interference_free();
      if (dist == 1.0) d1_fails &= !sa.interference_free();
      if (dist == 2.0) d2_graph_perfect &= ga.interference_free();
      if (dist > 2.0) dfull_perfect &= sa.interference_free();
    }
    if (dist == 2.0) sinr_rate_d2 = sinr_rate.mean();
    char label[32];
    std::snprintf(label, sizeof label, "distance-%.2f", dist);
    char perfect_str[16];
    std::snprintf(perfect_str, sizeof perfect_str, "%zu/%llu", perfect,
                  static_cast<unsigned long long>(seeds));
    table.add_row({label, common::Table::num(frame.mean(), 1),
                   common::Table::percent(graph_rate.mean(), 2),
                   common::Table::percent(sinr_rate.mean(), 2), perfect_str});
  }
  table.print(std::cout);

  // ALOHA baseline: slots for one complete local broadcast round.
  {
    common::Accumulator slots;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 16.0, 8000 + s);
      const auto a =
          baseline::run_aloha_local_broadcast(g, phys, 0.04, 3'000'000, 77 + s);
      if (a.completed) slots.add(static_cast<double>(a.slots));
    }
    std::printf("ALOHA (p=0.04): %.0f slots for one full local-broadcast "
                "round (vs one TDMA frame above)\n",
                slots.mean());
  }

  const bool crossover = d2_graph_perfect && sinr_rate_d2 < 1.0 && dfull_perfect;
  return bench::print_verdict(
      crossover && d1_fails,
      "crossover exactly where the paper puts it: distance-2 is perfect in "
      "the graph model but lossy under SINR; distance-(d+1) is lossless");
}
