// X16 — the Section-VI open question, constructively: the adaptive-Δ variant
// (src/core/adaptive.h) runs WITHOUT knowledge of Δ, starting from Δ̂ = 2 and
// doubling past the decoded-neighbor count whenever it proves the estimate
// too small. Heuristic (no proof) — this bench is its empirical evaluation
// against the exact-knowledge protocol: validity, violations, palette, time,
// and how close the final estimates land to the true Δ.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/adaptive.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 220));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X16: adaptive-Delta variant (Section-VI open question)",
      "nodes start with Delta_hat = 2 and double on evidence; expect valid "
      "colorings with 0 violations at a small time overhead vs exact "
      "knowledge");

  common::Table table({"avg_deg", "Delta", "variant", "valid", "violations",
                       "colors", "latency", "Delta_hat (mean/max)",
                       "restarts/node"});
  bool adaptive_ok = true;
  common::Accumulator overhead;

  for (double avg : {8.0, 16.0, 24.0}) {
    common::Accumulator exact_lat, adaptive_lat;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, avg, 39000 + s);

      core::MwRunConfig exact_cfg;
      exact_cfg.seed = 91000 + s;
      const auto exact = core::run_mw_coloring(g, exact_cfg);

      core::AdaptiveRunConfig adaptive_cfg;
      adaptive_cfg.seed = 91000 + s;
      const auto adaptive = core::run_adaptive_coloring(g, adaptive_cfg);

      adaptive_ok &= adaptive.coloring_valid &&
                     adaptive.metrics.all_decided &&
                     adaptive.independence_violations == 0;
      exact_lat.add(static_cast<double>(exact.metrics.slots_executed));
      adaptive_lat.add(static_cast<double>(adaptive.metrics.slots_executed));

      if (s == 0) {
        char delta_cell[32];
        std::snprintf(delta_cell, sizeof delta_cell, "%.1f / %zu",
                      adaptive.mean_final_delta, adaptive.max_final_delta);
        table.add_row(
            {common::Table::num(avg, 0),
             common::Table::integer(static_cast<long long>(g.max_degree())),
             "exact knowledge", exact.coloring_valid ? "yes" : "NO",
             common::Table::integer(
                 static_cast<long long>(exact.independence_violations)),
             common::Table::integer(static_cast<long long>(exact.palette)),
             common::Table::integer(
                 static_cast<long long>(exact.metrics.slots_executed)),
             "-", "-"});
        table.add_row(
            {"", "", "adaptive (Delta_hat_0=2)",
             adaptive.coloring_valid ? "yes" : "NO",
             common::Table::integer(
                 static_cast<long long>(adaptive.independence_violations)),
             common::Table::integer(static_cast<long long>(adaptive.palette)),
             common::Table::integer(
                 static_cast<long long>(adaptive.metrics.slots_executed)),
             delta_cell,
             common::Table::num(static_cast<double>(adaptive.total_restarts) /
                                    static_cast<double>(g.size()),
                                1)});
      }
    }
    overhead.add(adaptive_lat.mean() / exact_lat.mean());
  }
  table.print(std::cout);
  std::printf("adaptive/exact latency ratio: mean %.2f (min %.2f, max %.2f)\n",
              overhead.mean(), overhead.min(), overhead.max());

  return bench::print_verdict(
      adaptive_ok && overhead.max() < 4.0,
      "the adaptive variant stayed correct with no Delta knowledge — and is "
      "often FASTER, since most nodes' local competition degree (which "
      "drives their self-derived parameters) is below the global Delta. "
      "Empirical support that the Section-VI open question has a practical "
      "answer");
}
