// X12 — robustness beyond the paper's model: stochastic channel fading.
// The paper's analysis assumes deterministic path loss. We measure (a) how
// much of Theorem 3's 100%-delivery TDMA guarantee survives log-normal
// shadowing and Rayleigh fading, and (b) whether the coloring protocol —
// whose windows already carry w.h.p. slack — still terminates with valid
// colorings under mild shadowing.
#include <cstdio>
#include <iostream>
#include <string>

#include "baseline/greedy_coloring.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 250));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X12: fading robustness (beyond the paper's model)",
      "Theorem 3's TDMA guarantee and the coloring protocol under log-normal "
      "shadowing / Rayleigh fading");

  const auto phys = bench::phys_for_radius(1.0);
  const double d = phys.mac_distance_d();

  // (a) TDMA delivery vs channel model.
  common::Table mac_table({"channel", "delivery rate", "senders fully heard"});
  bool shapes_ok = true;
  {
    struct Channel {
      std::string name;
      sinr::FadingSpec spec;
    };
    std::vector<Channel> channels;
    channels.push_back({"deterministic (paper)", {}});
    for (double sigma : {2.0, 4.0, 6.0, 8.0}) {
      sinr::FadingSpec spec;
      spec.kind = sinr::FadingKind::kLogNormal;
      spec.sigma_db = sigma;
      char name[32];
      std::snprintf(name, sizeof name, "log-normal sigma=%.0f dB", sigma);
      channels.push_back({name, spec});
    }
    {
      sinr::FadingSpec spec;
      spec.kind = sinr::FadingKind::kRayleigh;
      channels.push_back({"Rayleigh", spec});
    }

    double last_lognormal_rate = 1.1;
    for (const auto& channel : channels) {
      common::Accumulator rate, full;
      for (std::uint64_t s = 0; s < seeds; ++s) {
        const auto g = bench::uniform_graph_with_density(n, 16.0, 27000 + s);
        const auto schedule = mac::TdmaSchedule::from_coloring(
            baseline::greedy_distance_d_coloring(g, d + 1.0));
        const auto audit =
            channel.spec.enabled()
                ? mac::audit_tdma_sinr_fading(g, phys, channel.spec, schedule, 4)
                : mac::audit_tdma_sinr(g, phys, schedule);
        rate.add(audit.delivery_rate());
        full.add(static_cast<double>(audit.senders_fully_heard) /
                 static_cast<double>(audit.senders_total));
      }
      mac_table.add_row({channel.name, common::Table::percent(rate.mean(), 2),
                         common::Table::percent(full.mean(), 1)});
      if (channel.name.find("log-normal") == 0) {
        shapes_ok &= rate.mean() < last_lognormal_rate;
        last_lognormal_rate = rate.mean();
      } else if (channel.name.find("deterministic") == 0) {
        shapes_ok &= rate.mean() == 1.0;
      }
    }
  }
  mac_table.print(std::cout);

  // (b) the coloring protocol under shadowing.
  common::Table proto_table({"channel", "all_decided", "valid_runs",
                             "violations", "avg_latency"});
  bool protocol_ok_mild = true;
  for (double sigma : {0.0, 1.0, 2.0, 4.0}) {
    std::size_t decided = 0, valid = 0, violations = 0;
    common::Accumulator latency;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 14.0, 28000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 53000 + s;
      if (sigma > 0.0) {
        cfg.fading.kind = sinr::FadingKind::kLogNormal;
        cfg.fading.sigma_db = sigma;
      }
      const auto r = core::run_mw_coloring(g, cfg);
      decided += r.metrics.all_decided;
      valid += r.coloring_valid;
      violations += r.independence_violations;
      latency.add(static_cast<double>(r.metrics.slots_executed));
    }
    char name[32];
    std::snprintf(name, sizeof name, "sigma=%.0f dB", sigma);
    char frac_a[16], frac_b[16];
    std::snprintf(frac_a, sizeof frac_a, "%zu/%llu", decided,
                  static_cast<unsigned long long>(seeds));
    std::snprintf(frac_b, sizeof frac_b, "%zu/%llu", valid,
                  static_cast<unsigned long long>(seeds));
    proto_table.add_row({name, frac_a, frac_b,
                         common::Table::integer(static_cast<long long>(violations)),
                         common::Table::num(latency.mean(), 0)});
    if (sigma <= 2.0) {
      protocol_ok_mild &= decided == seeds && valid == seeds;
    }
  }
  proto_table.print(std::cout);

  return bench::print_verdict(
      shapes_ok && protocol_ok_mild,
      "TDMA delivery degrades monotonically with shadowing; the protocol "
      "absorbs mild (<= 2 dB) shadowing with no loss of correctness");
}
