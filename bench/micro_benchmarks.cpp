// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// SINR field evaluation, per-slot reception resolution, spatial-index radius
// queries, UDG construction and deployment generation.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baseline/greedy_coloring.h"
#include "common/rng.h"
#include "geometry/deployment.h"
#include "geometry/grid_index.h"
#include "graph/unit_disk_graph.h"
#include "radio/interference_model.h"
#include "sinr/medium_field.h"
#include "sinr/reception.h"

namespace {

using namespace sinrcolor;

sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

std::vector<sinr::Transmitter> random_txs(std::size_t k, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<sinr::Transmitter> txs;
  txs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    txs.push_back({{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}});
  }
  return txs;
}

void BM_InterferenceField(benchmark::State& state) {
  const auto phys = phys_for_radius(1.0);
  const auto txs = random_txs(static_cast<std::size_t>(state.range(0)), 42);
  const geometry::Point at{5.0, 5.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sinr::interference_at(phys, at, txs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InterferenceField)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ResolveReception(benchmark::State& state) {
  const auto phys = phys_for_radius(1.0);
  const auto txs = random_txs(static_cast<std::size_t>(state.range(0)), 43);
  const geometry::Point at{5.0, 5.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sinr::resolve_reception(phys, at, txs));
  }
}
BENCHMARK(BM_ResolveReception)->Arg(4)->Arg(16)->Arg(64);

void BM_GridIndexQuery(benchmark::State& state) {
  common::Rng rng(44);
  const auto dep = geometry::uniform_deployment(
      static_cast<std::size_t>(state.range(0)), 10.0, rng);
  const geometry::GridIndex index(dep.points, dep.side, 1.0);
  std::size_t q = 0;
  for (auto _ : state) {
    const auto& center = dep.points[q++ % dep.points.size()];
    std::size_t count = 0;
    index.for_each_within(center, 1.0,
                          [&](std::size_t, const geometry::Point&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(256)->Arg(1024)->Arg(4096);

void BM_UdgConstruction(benchmark::State& state) {
  common::Rng rng(45);
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n) * M_PI / 12.0);
  const auto dep = geometry::uniform_deployment(n, side, rng);
  for (auto _ : state) {
    graph::UnitDiskGraph g(dep, 1.0);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_UdgConstruction)->Arg(256)->Arg(1024)->Arg(4096);

void medium_resolve_slot(benchmark::State& state,
                         radio::ResolveOptions options) {
  // A representative protocol slot: n nodes, ~n*q transmitters. The naive
  // and field variants resolve the identical workload, so their ratio is the
  // shared-field speedup (bench/x18_resolve_field measures it end to end).
  common::Rng rng(46);
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n) * M_PI / 14.0);
  graph::UnitDiskGraph g(geometry::uniform_deployment(n, side, rng), 1.0);
  radio::SinrInterferenceModel model(g, phys_for_radius(1.0), options);

  std::vector<radio::TxRecord> txs;
  std::vector<bool> listening(n, true);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (rng.bernoulli(4.0 / static_cast<double>(n))) {
      radio::Message m;
      m.kind = radio::MessageKind::kCompete;
      m.sender = v;
      txs.push_back({v, m});
      listening[v] = false;
    }
  }
  std::vector<std::optional<radio::Message>> deliveries(n);
  for (auto _ : state) {
    std::fill(deliveries.begin(), deliveries.end(), std::nullopt);
    model.resolve(0, txs, listening, deliveries);
    benchmark::DoNotOptimize(deliveries);
  }
}

void BM_MediumResolveSlotNaive(benchmark::State& state) {
  medium_resolve_slot(state, {sinr::ResolveKind::kNaive, 1});
}
BENCHMARK(BM_MediumResolveSlotNaive)->Arg(256)->Arg(1024);

void BM_MediumResolveSlotField(benchmark::State& state) {
  medium_resolve_slot(state, {sinr::ResolveKind::kField, 1});
}
BENCHMARK(BM_MediumResolveSlotField)->Arg(256)->Arg(1024);

void BM_MediumResolveSlotField4T(benchmark::State& state) {
  medium_resolve_slot(state, {sinr::ResolveKind::kField, 4});
}
BENCHMARK(BM_MediumResolveSlotField4T)->Arg(1024)->Arg(4096);

void BM_MediumResolveSlotSimd(benchmark::State& state) {
  medium_resolve_slot(state, {sinr::ResolveKind::kSimd, 1});
}
BENCHMARK(BM_MediumResolveSlotSimd)->Arg(256)->Arg(1024);

void BM_MediumResolveSlotSimd4T(benchmark::State& state) {
  medium_resolve_slot(state, {sinr::ResolveKind::kSimd, 4});
}
BENCHMARK(BM_MediumResolveSlotSimd4T)->Arg(1024)->Arg(4096);

void BM_DeploymentGeneration(benchmark::State& state) {
  common::Rng rng(47);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::uniform_deployment(n, 10.0, rng));
  }
}
BENCHMARK(BM_DeploymentGeneration)->Arg(1024)->Arg(16384);

void BM_GreedyColoring(benchmark::State& state) {
  common::Rng rng(48);
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = std::sqrt(static_cast<double>(n) * M_PI / 12.0);
  graph::UnitDiskGraph g(geometry::uniform_deployment(n, side, rng), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::greedy_coloring(g));
  }
}
BENCHMARK(BM_GreedyColoring)->Arg(256)->Arg(1024);

}  // namespace
