// X3 — Theorem 2 (time, growth in Δ): at fixed n, decision latency grows
// ~linearly in Δ (the O(Δ log n) bound with log n pinned).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 256));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 2));
  const std::string csv_path = cli.get("csv", "");
  cli.reject_unknown();

  bench::print_experiment_header(
      "X3: time vs Delta (fixed n)",
      "Theorem 2 — time is O(Delta log n): with n fixed, max decision "
      "latency grows ~linearly in Delta");

  common::Table table(
      {"avg_deg_target", "Delta", "max_latency", "latency/Delta", "valid"});
  std::vector<double> xs, ys;
  bool all_valid = true;

  for (double avg : {4.0, 8.0, 14.0, 20.0, 26.0}) {
    common::Accumulator delta_acc, lat_acc;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, avg, 3000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 9000 + s;
      const auto r = core::run_mw_coloring(g, cfg);
      all_valid &= r.coloring_valid && r.metrics.all_decided;
      delta_acc.add(static_cast<double>(g.max_degree()));
      lat_acc.add(static_cast<double>(r.metrics.max_decision_latency()));
    }
    xs.push_back(delta_acc.mean());
    ys.push_back(lat_acc.mean());
    table.add_row({common::Table::num(avg, 0),
                   common::Table::num(delta_acc.mean(), 1),
                   common::Table::num(lat_acc.mean(), 0),
                   common::Table::num(lat_acc.mean() / delta_acc.mean(), 0),
                   all_valid ? "yes" : "NO"});
  }
  table.print(std::cout);
  if (!csv_path.empty() && table.write_csv(csv_path)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }

  const auto fit = common::fit_linear(xs, ys);
  std::printf("latency vs Delta: slope=%.0f intercept=%.0f R^2=%.3f\n",
              fit.slope, fit.intercept, fit.r_squared);
  const bool linear = fit.r_squared > 0.85 && fit.slope > 0.0;
  return bench::print_verdict(all_valid && linear,
                              linear ? "latency grows linearly in Delta"
                                     : "latency not linear in Delta");
}
