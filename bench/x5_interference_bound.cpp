// X5 — Lemma 3: the probabilistic far interference is bounded.
//
// The proof's ring decomposition actually yields, for any exclusion radius
// r ≥ R_T and per-B_v probability mass ≤ 2 (Eq. 1):
//     Ψ_u^{v∉disc(r)} ≤ 48·P·((α−1)/(α−2))·r^{2−α}/R_T²        (*)
// and instantiating r = R_I makes (*) ≤ P/(2ρβR_T^α), the Lemma-3 constant.
//
// Part A probes (*) during live protocol runs at several radii (the worlds
// are smaller than R_I, so the generalized bound is the informative one) and
// checks the r^{2−α} decay shape. Part B builds a world LARGER than R_I with
// the paper's exact theory probabilities (leaders = greedy MIS at q_ℓ,
// everyone else at q_s) and verifies the Lemma-3 bound itself.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/independent_set.h"
#include "graph/packing.h"
#include "sinr/probes.h"

namespace {

double ring_bound(const sinrcolor::sinr::SinrParams& phys, double r) {
  return 48.0 * phys.power * (phys.alpha - 1.0) / (phys.alpha - 2.0) *
         std::pow(r, 2.0 - phys.alpha) / (phys.r_t() * phys.r_t());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 250));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 2));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X5: Lemma 3 far-interference bound",
      "Psi_u outside radius r obeys the ring bound 48P((a-1)/(a-2))r^(2-a)/"
      "R_T^2; at r=R_I this is the Lemma-3 constant P/(2*rho*beta*R_T^a)");

  const auto phys = bench::phys_for_radius(1.0);
  const double r_i = phys.r_i();
  std::printf("R_T=%.1f R_I=%.1f Lemma-3 bound=%.4g ring bound at R_I=%.4g\n",
              phys.r_t(), r_i, phys.lemma3_interference_bound(),
              ring_bound(phys, r_i));

  // --- Part A: live protocol runs, radius sweep. ---
  const double radii[] = {2.0, 4.0, 8.0};
  common::Table table({"radius r", "ring bound", "max_Psi", "mean_Psi",
                       "max/bound", "violations", "samples"});
  bool ok = true;
  std::vector<double> log_r, log_psi;
  {
    struct Agg {
      sinr::BoundProbe probe;
      explicit Agg(double b) : probe(b) {}
    };
    std::vector<sinr::BoundProbe> probes;
    for (double r : radii) probes.emplace_back(ring_bound(phys, r));

    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 14.0, 6000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 13000 + s;
      core::MwInstance instance(g, cfg);
      const auto& nodes = instance.nodes();
      std::vector<double> probs(g.size(), 0.0);
      const auto& positions = g.deployment().points;
      instance.simulator().add_observer(
          [&](radio::Slot slot, std::span<const radio::TxRecord>) {
            if (slot % 64 != 0) return;
            for (std::size_t v = 0; v < nodes.size(); ++v) {
              probs[v] = nodes[v]->tx_probability();
            }
            for (graph::NodeId u = 0; u < g.size(); u += 13) {
              for (std::size_t k = 0; k < probes.size(); ++k) {
                probes[k].record(sinr::probabilistic_interference_outside(
                    phys, g.position(u), positions, probs, radii[k], u));
              }
            }
          });
      const auto r = instance.run();
      ok &= r.metrics.all_decided;
    }
    for (std::size_t k = 0; k < probes.size(); ++k) {
      ok &= probes[k].violations() == 0;
      table.add_row(
          {common::Table::num(radii[k], 1),
           common::Table::num(probes[k].bound(), 6),
           common::Table::num(probes[k].max_observed(), 6),
           common::Table::num(probes[k].mean_observed(), 6),
           common::Table::num(probes[k].worst_ratio(), 4),
           common::Table::integer(static_cast<long long>(probes[k].violations())),
           common::Table::integer(static_cast<long long>(probes[k].samples()))});
      if (probes[k].mean_observed() > 0.0) {
        log_r.push_back(std::log(radii[k]));
        log_psi.push_back(std::log(probes[k].mean_observed()));
      }
    }
  }
  table.print(std::cout);

  const auto fit = common::fit_linear(log_r, log_psi);
  std::printf("decay exponent of mean Psi vs r: %.2f (theory: %.1f = 2-alpha)\n",
              fit.slope, 2.0 - phys.alpha);
  const bool decay_ok = fit.slope < -(phys.alpha - 2.0) * 0.5;

  // --- Part B: world larger than R_I, the paper's exact probabilities. ---
  {
    const double side = 2.2 * r_i;
    const auto count = static_cast<std::size_t>(side * side * 14.0 / M_PI);
    common::Rng rng(424242);
    graph::UnitDiskGraph g(geometry::uniform_deployment(count, side, rng), 1.0);
    const double phi_ri_rt = graph::phi_upper_bound(r_i + 1.0, 1.0);
    const double q_l = 1.0 / phi_ri_rt;
    const double q_s = q_l / static_cast<double>(g.max_degree());
    std::vector<double> probs(g.size(), q_s);
    for (graph::NodeId v : graph::greedy_mis(g)) probs[v] = q_l;

    sinr::BoundProbe probe(phys.lemma3_interference_bound());
    std::size_t sampled = 0;
    for (graph::NodeId u = 0; u < g.size() && sampled < 200; ++u) {
      // Central nodes only: their I_u discs extend past the world edge the
      // least, making them the adversarial samples.
      const auto& p = g.position(u);
      if (std::abs(p.x - side / 2) > side / 4 ||
          std::abs(p.y - side / 2) > side / 4) {
        continue;
      }
      ++sampled;
      probe.record(sinr::probabilistic_interference_outside(
          phys, p, g.deployment().points, probs, r_i, u));
    }
    std::printf(
        "Part B (side=%.0f > R_I, n=%zu, Delta=%zu, theory q_l=%.4g q_s=%.3g): "
        "samples=%zu max/bound=%.6f violations=%zu\n",
        side, g.size(), g.max_degree(), q_l, q_s, probe.samples(),
        probe.worst_ratio(), probe.violations());
    ok &= probe.violations() == 0 && probe.samples() > 0;
  }

  return bench::print_verdict(
      ok && decay_ok,
      "far interference below the ring/Lemma-3 bounds everywhere, with the "
      "predicted r^(2-alpha) decay");
}
