// Shared helpers for the experiment harnesses (bench/x*).
//
// Every harness prints the experiment id, the claim it reproduces, a table of
// measured rows, and a PASS/FAIL verdict for the claim's shape, so
// `for b in build/bench/*; do $b; done` yields a self-contained report.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "geometry/deployment.h"
#include "graph/unit_disk_graph.h"
#include "sinr/params.h"

namespace sinrcolor::bench {

/// Physical layer whose transmission range R_T equals `r_t` with the library
/// default α, β, ρ (noise solved from the R_T definition).
inline sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

/// Uniform deployment with expected average degree ≈ `avg_degree`
/// (side chosen so n·π·R_T²/side² = avg_degree; R_T = 1).
inline graph::UnitDiskGraph uniform_graph_with_density(std::size_t n,
                                                       double avg_degree,
                                                       std::uint64_t seed) {
  const double side =
      std::sqrt(static_cast<double>(n) * M_PI / avg_degree);
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

inline void print_experiment_header(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline int print_verdict(bool pass, const std::string& detail) {
  std::printf("verdict: %s — %s\n", pass ? "PASS" : "FAIL", detail.c_str());
  return pass ? 0 : 1;
}

}  // namespace sinrcolor::bench
