// Shared helpers for the experiment harnesses (bench/x*).
//
// Every harness prints the experiment id, the claim it reproduces, a table of
// measured rows, and a PASS/FAIL verdict for the claim's shape, so
// `for b in build/bench/*; do $b; done` yields a self-contained report.
// Passing `--metrics-out=PATH` to a wired harness additionally attaches an
// obs::RunObservation to its runs and writes the accumulated metrics
// registry (counters + histograms across every run of the sweep) as a JSON
// sidecar — machine-readable ground truth next to the human-readable table.
#pragma once

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "common/cli.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/sweep.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/topology_cache.h"
#include "graph/unit_disk_graph.h"
#include "obs/observation.h"
#include "sinr/field_engine.h"
#include "sinr/params.h"

// Baked in by bench/CMakeLists.txt (git rev-parse at configure time);
// "unknown" outside a git checkout or a non-CMake compile.
#ifndef SINRCOLOR_GIT_SHA
#define SINRCOLOR_GIT_SHA "unknown"
#endif

namespace sinrcolor::bench {

/// Every machine-readable bench artifact (`--metrics-out`, `--chaos-out`,
/// `--sweep-bench-out`, ...) is wrapped in this envelope so a directory of
/// BENCH_*.json files from different PRs/hosts is diffable by
/// tools/bench_report.py and validated by tools/lint/bench_schema_check.py:
///
///   {"schema":"sinrcolor.bench.v1","experiment":...,"git_sha":...,
///    "host":{"name":...,"cores":...},"threads":N,"payload":{...}}
///
/// The payload keeps each harness's own shape; provenance lives only in the
/// envelope. Wall times inside payloads are reporting-only and excluded from
/// byte-identity comparisons (compare payloads minus *_us keys, or whole
/// payloads across thread counts — see .github/workflows/ci.yml).
inline constexpr const char* kBenchSchema = "sinrcolor.bench.v1";

inline std::string host_fingerprint() {
  char name[256] = {0};
  if (gethostname(name, sizeof(name) - 1) != 0) return "unknown";
  return name[0] != '\0' ? std::string(name) : std::string("unknown");
}

/// Opens the envelope (object + provenance fields) and leaves the writer
/// expecting the `payload` value; the caller writes its payload object, then
/// calls end_bench_envelope.
inline void begin_bench_envelope(common::JsonWriter& json,
                                 const char* experiment, std::size_t threads) {
  json.begin_object();
  json.field("schema", kBenchSchema);
  json.field("experiment", experiment);
  json.field("git_sha", SINRCOLOR_GIT_SHA);
  json.key("host");
  json.begin_object();
  json.field("name", host_fingerprint());
  json.field("cores",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.end_object();
  json.field("threads", static_cast<std::uint64_t>(threads));
  json.key("payload");
}

inline void end_bench_envelope(common::JsonWriter& json) { json.end_object(); }

/// Atomic publish shared by every bench artifact: write to a sibling tmp
/// file, then rename over the target, so a crash (or a concurrent reader)
/// never observes a truncated file — rename(2) is atomic within a
/// filesystem. Prints "`what` written to PATH" on success.
inline bool write_atomic(const std::string& path, const std::string& content,
                         const char* what) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::printf("cannot write %s %s\n", what, tmp.c_str());
      return false;
    }
    out << content << '\n';
    out.flush();
    if (!out) {
      std::printf("cannot write %s %s\n", what, tmp.c_str());
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::printf("cannot rename %s %s -> %s\n", what, tmp.c_str(),
                path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  std::printf("%s written to %s\n", what, path.c_str());
  return true;
}

/// Physical layer whose transmission range R_T equals `r_t` with the library
/// default α, β, ρ (noise solved from the R_T definition).
inline sinr::SinrParams phys_for_radius(double r_t) {
  sinr::SinrParams p;
  p.noise = p.power / (2.0 * p.beta * std::pow(r_t, p.alpha));
  return p;
}

/// Uniform deployment with expected average degree ≈ `avg_degree`
/// (side chosen so n·π·R_T²/side² = avg_degree; R_T = 1).
inline graph::UnitDiskGraph uniform_graph_with_density(std::size_t n,
                                                       double avg_degree,
                                                       std::uint64_t seed) {
  const double side =
      std::sqrt(static_cast<double>(n) * M_PI / avg_degree);
  common::Rng rng(seed);
  return {geometry::uniform_deployment(n, side, rng), 1.0};
}

/// Cache-backed variant of uniform_graph_with_density: the topology for a
/// given (n, avg_degree, seed) is built once per process and shared
/// read-only across every trial and configuration that asks for it again
/// (graph::global_topology_cache()). Byte-identical to the uncached builder.
inline std::shared_ptr<const graph::UnitDiskGraph>
shared_uniform_graph_with_density(std::size_t n, double avg_degree,
                                  std::uint64_t seed) {
  const double side = std::sqrt(static_cast<double>(n) * M_PI / avg_degree);
  graph::TopologyKey key;
  key.kind = "uniform-density";
  key.n = n;
  key.side = side;
  key.radius = 1.0;
  key.seed = seed;
  key.param1 = avg_degree;
  return graph::global_topology_cache().get_or_build(
      key, [&] { return uniform_graph_with_density(n, avg_degree, seed); });
}

/// Parses `--sweep-threads=N` (default 1): how many trials the harness runs
/// concurrently through common::SweepEngine. Results are byte-identical for
/// every value; only wall time changes. Distinct from `--threads`, which is
/// the per-run resolve worker count.
inline std::size_t sweep_threads(const common::Cli& cli) {
  const auto threads = cli.get_int("sweep-threads", 1);
  if (threads < 1) {
    std::printf("--sweep-threads must be >= 1\n");
    std::exit(2);
  }
  return static_cast<std::size_t>(threads);
}

inline void print_experiment_header(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline int print_verdict(bool pass, const std::string& detail) {
  std::printf("verdict: %s — %s\n", pass ? "PASS" : "FAIL", detail.c_str());
  return pass ? 0 : 1;
}

/// Applies `--resolve=field|simd|naive`, `--threads=N` (the SINR reception
/// path and its worker count — see docs/PERFORMANCE.md) and
/// `--slot-threads=N` (the simulator's tiled slot engine — see
/// docs/ARCHITECTURE.md) to a run config. All three knobs change wall time
/// only, never results, so harness claims are path-independent. Exits with a
/// usage error on bad values.
inline void apply_resolve_flags(const common::Cli& cli,
                                core::MwRunConfig& cfg) {
  const std::string resolve = cli.get("resolve", "field");
  if (!sinr::resolve_kind_from_string(resolve, cfg.resolve)) {
    std::printf("unknown --resolve=%s (field|simd|naive)\n", resolve.c_str());
    std::exit(2);
  }
  const auto threads = cli.get_int("threads", 1);
  if (threads < 1) {
    std::printf("--threads must be >= 1\n");
    std::exit(2);
  }
  cfg.threads = static_cast<std::size_t>(threads);
  const auto slot_threads = cli.get_int("slot-threads", 1);
  if (slot_threads < 1) {
    std::printf("--slot-threads must be >= 1\n");
    std::exit(2);
  }
  cfg.slot_threads = static_cast<std::size_t>(slot_threads);
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 when unavailable. A process-lifetime high-water
/// mark: meaningful for single-configuration scale runs (x20's memory
/// trajectory), monotone across rows within one invocation.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %llu", &kb) == 1) {
      return static_cast<std::uint64_t>(kb) * 1024;
    }
    return 0;
  }
  return 0;
}

/// Monotonic wall-clock stopwatch for before/after speedup tables.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  /// Microseconds elapsed since construction or the last reset().
  std::uint64_t elapsed_us() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Opt-in metrics sidecar, driven by `--metrics-out=PATH`. When the flag is
/// absent, observation() is null and the harness runs exactly as before
/// (emission sites see a null sink). When present, attach observation() to
/// each run and call write() once at the end; every run of the sweep
/// accumulates into the same registry. The trace ring is kept small — the
/// sidecar is about aggregate metrics, not event-level replay.
///
/// `--profile=true` (requires --metrics-out) additionally installs the
/// slot-phase profiler on the observation; write() then emits its per-phase
/// stats as a `profile` block. The sidecar is a sinrcolor.bench.v1 envelope:
/// provenance (git sha, host, threads) wraps the {trace, trials, metrics,
/// profile} payload. Call set_threads() with the harness's worker count so
/// the envelope records it (defaults to 1).
class MetricsSidecar {
 public:
  explicit MetricsSidecar(const common::Cli& cli)
      : path_(cli.get("metrics-out", "")) {
    if (!path_.empty()) {
      observation_ =
          std::make_unique<obs::RunObservation>(std::size_t{1} << 12);
    }
    if (cli.get_bool("profile", false)) {
      if (observation_ == nullptr) {
        std::printf("--profile requires --metrics-out=PATH\n");
        std::exit(2);
      }
      observation_->enable_profiler();
    }
  }

  obs::RunObservation* observation() { return observation_.get(); }

  /// Worker-thread count recorded in the envelope (resolve or sweep threads,
  /// whichever the harness varies).
  void set_threads(std::size_t threads) { threads_ = threads; }

  /// Accumulates a sweep's per-trial wall times into the sidecar; write()
  /// then reports trial count, mean, p50 and p95 (in microseconds). Wall
  /// time lives ONLY here and on stdout — never in the byte-compared CSV/
  /// JSON result artifacts. No-op when the sidecar is off. With the profiler
  /// installed, each trial also lands as one kTrial scope (SweepEngine lives
  /// in common and cannot see obs, so the trial phase is fed here).
  void record_trials(const common::SweepTiming& timing) {
    if (observation_ == nullptr) return;
    trial_timing_.trial_us.insert(trial_timing_.trial_us.end(),
                                  timing.trial_us.begin(),
                                  timing.trial_us.end());
    trial_timing_.total_us += timing.total_us;
    if (observation_->profiler != nullptr) {
      for (const std::uint64_t us : timing.trial_us) {
        observation_->profiler->record(obs::Phase::kTrial, us, us);
      }
    }
  }

  /// Writes the envelope with payload {trace totals, per-trial timing,
  /// metrics registry, profile}; no-op when the flag was absent. Returns
  /// false on I/O failure (after printing).
  bool write(const char* experiment_id) const {
    if (observation_ == nullptr) return true;
    common::JsonWriter json;
    begin_bench_envelope(json, experiment_id, threads_);
    json.begin_object();
    json.key("trace");
    json.begin_object();
    json.field("recorded", observation_->trace.recorded());
    json.field("dropped", observation_->trace.dropped());
    json.end_object();
    if (!trial_timing_.trial_us.empty()) {
      json.key("trials");
      json.begin_object();
      json.field("count", trial_timing_.trial_us.size());
      json.field("total_us", trial_timing_.total_us);
      json.field("mean_us", trial_timing_.mean_us());
      json.field("p50_us", trial_timing_.p50_us());
      json.field("p95_us", trial_timing_.p95_us());
      json.field("max_us", trial_timing_.max_us());
      json.end_object();
    }
    json.key("metrics");
    observation_->metrics.write_json(json);
    if (observation_->profiler != nullptr &&
        observation_->profiler->recorded() > 0) {
      json.key("profile");
      observation_->profiler->write_json(json);
    }
    json.end_object();
    end_bench_envelope(json);
    return write_atomic(path_, json.str(), "metrics sidecar");
  }

 private:
  std::string path_;
  std::size_t threads_ = 1;
  std::unique_ptr<obs::RunObservation> observation_;
  common::SweepTiming trial_timing_;
};

}  // namespace sinrcolor::bench
