// X1 — Theorem 2 (palette): the algorithm produces a (1, O(Δ))-coloring;
// specifically at most (φ(2R_T)+1)·Δ colors. We sweep the density so Δ grows
// and check (a) validity, (b) linear palette growth in Δ, (c) the max color
// stays under the bound of the profile in use.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "graph/packing.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 220));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const std::string csv_path = cli.get("csv", "");
  cli.reject_unknown();

  bench::print_experiment_header(
      "X1: colors vs Delta",
      "Theorem 2 — palette is O(Delta): max color <= (phi(2R_T)+1)*Delta, "
      "distinct colors grow ~linearly in Delta");

  common::Table table({"avg_deg_target", "Delta", "colors", "max_color",
                       "bound", "clique_LB", "colors/Delta", "colors/LB",
                       "valid", "slots"});
  std::vector<double> xs, ys;
  bool all_valid = true;
  bool bound_held = true;

  for (double avg : {4.0, 8.0, 12.0, 16.0, 22.0, 28.0}) {
    common::Accumulator delta_acc, colors_acc, maxc_acc, slots_acc, clique_acc;
    long long bound = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, avg, 1000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 5000 + s;
      const auto r = core::run_mw_coloring(g, cfg);
      all_valid &= r.coloring_valid && r.metrics.all_decided;
      bound = r.params.palette_bound();
      bound_held &= r.max_color <= 2 * bound;  // practical-profile guard
      delta_acc.add(static_cast<double>(g.max_degree()));
      colors_acc.add(static_cast<double>(r.palette));
      maxc_acc.add(static_cast<double>(r.max_color));
      slots_acc.add(static_cast<double>(r.metrics.slots_executed));
      clique_acc.add(static_cast<double>(graph::greedy_clique_lower_bound(g)));
    }
    xs.push_back(delta_acc.mean());
    ys.push_back(colors_acc.mean());
    table.add_row({common::Table::num(avg, 0),
                   common::Table::num(delta_acc.mean(), 1),
                   common::Table::num(colors_acc.mean(), 1),
                   common::Table::num(maxc_acc.mean(), 1),
                   common::Table::integer(bound),
                   common::Table::num(clique_acc.mean(), 1),
                   common::Table::num(colors_acc.mean() / delta_acc.mean(), 2),
                   common::Table::num(colors_acc.mean() / clique_acc.mean(), 2),
                   all_valid ? "yes" : "NO",
                   common::Table::num(slots_acc.mean(), 0)});
  }
  table.print(std::cout);
  if (!csv_path.empty() && table.write_csv(csv_path)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }

  const auto fit = common::fit_linear(xs, ys);
  std::printf("colors vs Delta: slope=%.2f intercept=%.1f R^2=%.3f "
              "(linear, slope well below phi(2R_T)+1 = 6)\n",
              fit.slope, fit.intercept, fit.r_squared);

  const bool linear = fit.r_squared > 0.85 && fit.slope < 6.0 && fit.slope > 0.2;
  return bench::print_verdict(
      all_valid && bound_held && linear,
      all_valid ? (linear ? "valid colorings, palette grows linearly in Delta"
                          : "palette growth not linear in Delta")
                : "some run produced an invalid coloring");
}
