// X4 — Theorem 1: every color class C_i forms an independent set throughout
// the execution, w.h.p. The driver performs an incremental online check every
// slot (a violation can only appear the instant a node finalizes a color);
// across many seeds, topologies and wake-up patterns the count must be zero.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 200));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 4));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X4: online independence of the color classes",
      "Theorem 1 — at every time slot, each class C_i is an independent set "
      "(checked incrementally every slot of every run; expect 0 violations)");

  struct Scenario {
    const char* name;
    core::WakeupKind wakeup;
  };
  const Scenario scenarios[] = {
      {"uniform/simultaneous", core::WakeupKind::kSimultaneous},
      {"uniform/async-window", core::WakeupKind::kUniform},
      {"clustered/simultaneous", core::WakeupKind::kSimultaneous},
      {"clustered/async-window", core::WakeupKind::kUniform},
  };

  common::Table table({"scenario", "runs", "Delta(max)", "violations",
                       "invalid_runs", "slots(max)"});
  std::size_t total_violations = 0;
  std::size_t invalid_runs = 0;

  for (const auto& scenario : scenarios) {
    const bool clustered = std::string(scenario.name).find("clustered") == 0;
    std::size_t violations = 0, invalid = 0, delta_max = 0;
    long long slots_max = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      common::Rng rng(4000 + s);
      geometry::Deployment dep =
          clustered ? geometry::clustered_deployment(n, 5.0, 4, 1.0, rng)
                    : geometry::uniform_deployment(n, 5.0, rng);
      graph::UnitDiskGraph g(std::move(dep), 1.0);
      core::MwRunConfig cfg;
      cfg.seed = 11000 + s;
      cfg.wakeup = scenario.wakeup;
      cfg.wakeup_window = 3000;
      const auto r = core::run_mw_coloring(g, cfg);
      violations += r.independence_violations;
      invalid += (r.coloring_valid && r.metrics.all_decided) ? 0 : 1;
      delta_max = std::max(delta_max, g.max_degree());
      slots_max = std::max(slots_max,
                           static_cast<long long>(r.metrics.slots_executed));
    }
    total_violations += violations;
    invalid_runs += invalid;
    table.add_row({scenario.name,
                   common::Table::integer(static_cast<long long>(seeds)),
                   common::Table::integer(static_cast<long long>(delta_max)),
                   common::Table::integer(static_cast<long long>(violations)),
                   common::Table::integer(static_cast<long long>(invalid)),
                   common::Table::integer(slots_max)});
  }
  table.print(std::cout);

  return bench::print_verdict(
      total_violations == 0 && invalid_runs == 0,
      "0 independence violations across all runs and wake-up patterns");
}
