// X19 — chaos harness: the self-healing protocol under declarative fault
// plans (src/faults), judged by the runtime invariant monitor.
//
// For each medium (sinr | sinr+fading | graph) and each fault intensity x,
// every trial runs the recovery protocol against a plan scaled by x: one
// crash + restart, per-link message drops with probability x, a noise burst
// (factor 1 + x) and a light duty-cycled jammer of power x near the middle
// of the deployment. The InvariantMonitor watches coloring legality,
// on-air independence and conflict EPISODES the whole time; the harness
// reports recovery latency (restart → decision), the delivery-drop curve
// vs x, and a conflict-duration histogram.
//
// The claim gated by the verdict:
//   * the x = 0 control rows are invariant-clean on every medium (the
//     monitor itself never fires on a fault-free run), and
//   * with faults enabled, every conflict the faults provoke is repaired
//     before the run ends (no open episodes), the live coloring is valid,
//     nobody stalls, and the measured drop rate grows with x.
//
// Trials run through common::SweepEngine and all fault randomness is a pure
// hash of (plan, seed, slot, link), so the table, the CSV and the payload of
// the BENCH_chaos.json baseline (--chaos-out=PATH) are identical for every
// --threads / --sweep-threads value — CI compares the envelope payloads of
// --sweep-threads=1 vs =4 (the envelope's `threads` field legitimately
// differs). Wall time never reaches any compared artifact.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/sweep.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "faults/fault_engine.h"
#include "faults/fault_plan.h"
#include "faults/invariant_monitor.h"
#include "graph/coloring.h"
#include "robust/recovery_protocol.h"

namespace {

using namespace sinrcolor;

struct Medium {
  const char* name;
  bool graph_model;
  bool fading;
};

constexpr Medium kMedia[] = {
    {"sinr", false, false},
    {"sinr+fading", false, true},
    {"graph", true, false},
};

constexpr double kIntensities[] = {0.0, 0.1, 0.25, 0.4};

/// Conflict-duration histogram buckets (slots from onset to repair).
constexpr radio::Slot kDurationEdges[] = {8, 64, 512};
constexpr std::size_t kDurationBuckets = 4;  // (0,8] (8,64] (64,512] >512

// (1,·)-validity restricted to nodes alive at the end of the run.
bool live_coloring_valid(const graph::UnitDiskGraph& g,
                         const core::MwRunResult& r) {
  graph::Coloring live = r.coloring;
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (r.metrics.death_slot[v] >= 0) live.color[v] = graph::kUncolored;
    else if (live.color[v] == graph::kUncolored) return false;
  }
  for (const auto& violation : graph::find_coloring_violations(g, live)) {
    if (violation.u != violation.v) return false;
  }
  return true;
}

using CheckRange = faults::InvariantMonitor::Report::CheckRange;
constexpr std::size_t kCheckCount = faults::InvariantMonitor::kCheckCount;

/// Union of two firing ranges: counts add, the slot window widens.
void merge_range(CheckRange& into, const CheckRange& from) {
  if (from.count == 0) return;
  into.count += from.count;
  if (into.first_slot < 0 || from.first_slot < into.first_slot) {
    into.first_slot = from.first_slot;
  }
  into.last_slot = std::max(into.last_slot, from.last_slot);
}

// Results only — no wall time, so merged rows are a pure function of
// (base seed, trial index).
struct TrialResult {
  double drop_rate = 0.0;        ///< fault drops / resolvable deliveries
  std::uint64_t dropped = 0;
  std::size_t conflicts = 0;     ///< legality episodes opened
  std::size_t repaired = 0;
  std::size_t open = 0;          ///< episodes still open at run end
  radio::Slot max_duration = 0;
  std::size_t duration_hist[kDurationBuckets] = {0, 0, 0, 0};
  radio::Slot rejoin_latency = -1;  ///< restart → decision of the victim
  std::size_t stalled = 0;
  bool live_valid = false;
  bool monitor_clean = false;
  CheckRange checks[kCheckCount];  ///< per-check firing details
  CheckRange open_range;           ///< onset range of still-open episodes
};

struct Aggregate {
  common::Accumulator drop_rate, rejoin;
  std::size_t conflicts = 0, repaired = 0, open = 0, stalled = 0;
  radio::Slot max_duration = 0;
  std::size_t duration_hist[kDurationBuckets] = {0, 0, 0, 0};
  bool all_live_valid = true;
  bool all_clean = true;
  CheckRange checks[kCheckCount];
  CheckRange open_range;

  void add(const TrialResult& t) {
    drop_rate.add(t.drop_rate);
    if (t.rejoin_latency >= 0) rejoin.add(static_cast<double>(t.rejoin_latency));
    conflicts += t.conflicts;
    repaired += t.repaired;
    open += t.open;
    stalled += t.stalled;
    max_duration = std::max(max_duration, t.max_duration);
    for (std::size_t b = 0; b < kDurationBuckets; ++b) {
      duration_hist[b] += t.duration_hist[b];
    }
    all_live_valid &= t.live_valid;
    all_clean &= t.monitor_clean;
    for (std::size_t c = 0; c < kCheckCount; ++c) {
      merge_range(checks[c], t.checks[c]);
    }
    merge_range(open_range, t.open_range);
  }
};

std::size_t duration_bucket(radio::Slot d) {
  for (std::size_t b = 0; b < kDurationBuckets - 1; ++b) {
    if (d <= kDurationEdges[b]) return b;
  }
  return kDurationBuckets - 1;
}

/// The fault plan of one trial: intensity 0 is the fault-free control.
faults::FaultPlan make_plan(double intensity, std::size_t n,
                            const core::MwParams& params, double side,
                            std::uint64_t trial_seed) {
  faults::FaultPlan plan;
  if (intensity <= 0.0) return plan;
  const auto listen_end = static_cast<radio::Slot>(params.listen_slots);
  const auto wp = static_cast<radio::Slot>(params.window_positive);

  // One crash + restart; the victim derives from the trial seed alone.
  const auto victim = static_cast<graph::NodeId>(
      common::derive_seed(trial_seed, 0xc4a5) % n);
  const radio::Slot crash = listen_end + 2 * wp;
  plan.crashes.push_back({victim, crash, crash + 4 * wp});

  // Per-link loss over the whole active phase (nothing is on the air during
  // the listen phase, so the window starts where traffic starts).
  plan.drops.push_back({listen_end, -1, intensity});

  // Noise burst around the crash and a light duty-cycled jammer near the
  // middle of the deployment (offset so it cannot coincide with a node).
  plan.noise.push_back({crash, crash + 2 * wp, 1.0 + intensity});
  faults::JammerSpec jammer;
  jammer.position = {side * 0.5 + 0.0137, side * 0.5 + 0.0071};
  jammer.from = listen_end;
  jammer.to = crash + 2 * wp;
  jammer.power = intensity;
  jammer.period = 4;
  jammer.duty = 1;
  jammer.radius = 0.5;  // graph medium: blanks listeners within 0.5
  plan.jammers.push_back(jammer);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int_at_least("n", 60, 2));
  const double avg = cli.get_double_at_least("avg-degree", 12.0, 1.0);
  const auto seeds =
      static_cast<std::size_t>(cli.get_int_at_least("seeds", 2, 1));
  const auto base_seed = cli.get_seed("seed", 19);
  const std::string csv_path = cli.get("csv", "");
  const std::string chaos_path = cli.get("chaos-out", "");
  const std::size_t sweep = bench::sweep_threads(cli);
  core::MwRunConfig base_cfg;
  bench::apply_resolve_flags(cli, base_cfg);
  bench::MetricsSidecar sidecar(cli);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X19: chaos — fault plans vs the self-healing protocol",
      "fault-free control runs are invariant-clean; under injected crashes, "
      "drops, noise and jamming every conflict is repaired in bounded time "
      "and the live coloring stays valid on all three media");

  base_cfg.recovery.enabled = true;
  base_cfg.recovery.retransmit.initial_wait = 40;  // request-path hardening

  common::SweepEngine engine(sweep == 1 || sidecar.observation() == nullptr
                                 ? sweep
                                 : 1);
  if (engine.thread_count() != sweep) {
    std::printf("note: --metrics-out forces --sweep-threads=1 (shared "
                "observation is single-threaded)\n");
  }
  sidecar.set_threads(engine.thread_count());

  const double side = std::sqrt(static_cast<double>(n) * M_PI / avg);
  const auto run_trial = [&](const Medium& medium, double intensity,
                             const common::TrialContext& ctx) -> TrialResult {
    const auto g = bench::shared_uniform_graph_with_density(
        n, avg, common::derive_seed(ctx.seed, 0x67));
    core::MwRunConfig cfg = base_cfg;
    cfg.seed = ctx.seed;
    cfg.graph_model = medium.graph_model;
    if (medium.fading) cfg.fading.kind = sinr::FadingKind::kLogNormal;
    const auto params = core::derive_mw_params(*g, cfg);
    // Faulted runs converge later than the clean bound; give them headroom.
    cfg.max_slots = 2 * params.recommended_max_slots();
    // Post-decision air time: a conflict opened by the LAST decision still
    // needs beacons on the air for the late-conflict watch to repair it.
    cfg.recovery.settle_slots =
        4 * static_cast<radio::Slot>(params.window_positive);

    const faults::FaultPlan plan =
        make_plan(intensity, n, params, side, ctx.seed);
    robust::RecoveryInstance instance(*g, cfg);
    if (sidecar.observation() != nullptr) {
      instance.attach_observation(sidecar.observation());
    }
    faults::FaultEngine fault_engine(plan, cfg.seed);
    fault_engine.install(instance.simulator());
    const auto& nodes = instance.nodes();
    faults::InvariantMonitor monitor(
        *g, [&nodes](graph::NodeId v) { return nodes[v]->final_color(); });
    monitor.attach(instance.simulator());
    const auto r = instance.run();

    TrialResult out;
    out.dropped = r.metrics.fault_dropped_deliveries;
    const double resolvable = static_cast<double>(
        r.metrics.total_deliveries + r.metrics.fault_dropped_deliveries);
    out.drop_rate =
        resolvable > 0.0 ? static_cast<double>(out.dropped) / resolvable : 0.0;
    const auto report = monitor.report();
    out.conflicts = report.legality_violations;
    out.repaired = report.conflicts_repaired;
    out.open = report.open_conflicts;
    out.max_duration = report.max_conflict_duration;
    for (const radio::Slot d : monitor.conflict_durations()) {
      ++out.duration_hist[duration_bucket(d)];
    }
    if (!plan.crashes.empty()) {
      const auto& crash = plan.crashes.front();
      const radio::Slot decided = r.metrics.decision_slot[crash.node];
      if (decided >= crash.restart) {
        out.rejoin_latency = decided - crash.restart;
      }
    }
    out.stalled = r.metrics.stalled_nodes;
    out.live_valid = live_coloring_valid(*g, r);
    out.monitor_clean = report.clean();
    for (std::size_t c = 0; c < kCheckCount; ++c) out.checks[c] = report.check[c];
    out.open_range = report.open_range;
    return out;
  };

  common::Table table({"medium", "intensity", "drop_rate", "conflicts",
                       "repaired", "open", "max_dur", "rejoin(avg)", "stalled",
                       "live-valid"});
  bool controls_clean = true;
  bool all_repaired = true;
  bool all_valid = true;
  bool no_stalls = true;
  bool curves_rise = true;
  std::vector<Aggregate> aggregates;

  for (std::size_t m = 0; m < std::size(kMedia); ++m) {
    double previous_rate = -1.0;
    for (std::size_t i = 0; i < std::size(kIntensities); ++i) {
      const double x = kIntensities[i];
      common::SweepTiming timing;
      const auto results = engine.run(
          seeds,
          common::derive_seed(common::derive_seed(base_seed, m), i),
          [&](const common::TrialContext& ctx) {
            return run_trial(kMedia[m], x, ctx);
          },
          &timing);
      Aggregate agg;
      for (const TrialResult& t : results) agg.add(t);

      table.add_row(
          {kMedia[m].name, common::Table::num(x, 2),
           common::Table::num(agg.drop_rate.mean(), 3),
           common::Table::integer(static_cast<long long>(agg.conflicts)),
           common::Table::integer(static_cast<long long>(agg.repaired)),
           common::Table::integer(static_cast<long long>(agg.open)),
           common::Table::integer(static_cast<long long>(agg.max_duration)),
           agg.rejoin.count() > 0 ? common::Table::num(agg.rejoin.mean(), 0)
                                  : "-",
           common::Table::integer(static_cast<long long>(agg.stalled)),
           agg.all_live_valid ? "yes" : "NO"});
      sidecar.record_trials(timing);

      if (x == 0.0) controls_clean &= agg.all_clean;
      all_repaired &= agg.open == 0;
      all_valid &= agg.all_live_valid;
      no_stalls &= agg.stalled == 0;
      curves_rise &= agg.drop_rate.mean() >= previous_rate;
      previous_rate = agg.drop_rate.mean();
      aggregates.push_back(agg);
    }
  }
  table.print(std::cout);

  // Dirty-row detail: for every row where the monitor fired, name WHICH
  // invariant broke and the slot window it spans, so a failing verdict (or
  // a look at a faulted row) points straight at the trace region to replay.
  {
    std::size_t row = 0;
    for (std::size_t m = 0; m < std::size(kMedia); ++m) {
      for (std::size_t i = 0; i < std::size(kIntensities); ++i, ++row) {
        const Aggregate& agg = aggregates[row];
        if (agg.all_clean) continue;
        std::printf("  dirty %s x=%.2f:", kMedia[m].name, kIntensities[i]);
        for (std::size_t c = 0; c < kCheckCount; ++c) {
          if (agg.checks[c].count == 0) continue;
          std::printf(" %s x%zu [slots %lld..%lld]",
                      faults::InvariantMonitor::check_name(c),
                      agg.checks[c].count,
                      static_cast<long long>(agg.checks[c].first_slot),
                      static_cast<long long>(agg.checks[c].last_slot));
        }
        if (agg.open_range.count > 0) {
          std::printf(" open x%zu [onset %lld..%lld]", agg.open_range.count,
                      static_cast<long long>(agg.open_range.first_slot),
                      static_cast<long long>(agg.open_range.last_slot));
        }
        std::printf("\n");
      }
    }
  }

  // Conflict-duration histogram over every faulted trial (repairs only).
  std::size_t hist[kDurationBuckets] = {0, 0, 0, 0};
  for (const Aggregate& agg : aggregates) {
    for (std::size_t b = 0; b < kDurationBuckets; ++b) {
      hist[b] += agg.duration_hist[b];
    }
  }
  std::printf("conflict durations (slots): <=8: %zu, <=64: %zu, <=512: %zu, "
              ">512: %zu\n",
              hist[0], hist[1], hist[2], hist[3]);

  if (!csv_path.empty() && table.write_csv(csv_path)) {
    std::printf("rows written to %s\n", csv_path.c_str());
  }

  // BENCH_chaos.json: the deterministic baseline (results only, no wall
  // times), wrapped in the sinrcolor.bench.v1 envelope. The envelope's
  // `threads` field records the actual sweep width, so CI compares the
  // PAYLOAD (not raw bytes) across thread counts — the payload is a pure
  // function of (topology, plans, seeds).
  if (!chaos_path.empty()) {
    common::JsonWriter json;
    bench::begin_bench_envelope(json, "x19_chaos", engine.thread_count());
    json.begin_object();
    json.field("n", n);
    json.field("avg_degree", avg);
    json.field("seeds", seeds);
    json.key("rows");
    json.begin_array();
    std::size_t row = 0;
    for (std::size_t m = 0; m < std::size(kMedia); ++m) {
      for (std::size_t i = 0; i < std::size(kIntensities); ++i, ++row) {
        const Aggregate& agg = aggregates[row];
        json.begin_object();
        json.field("medium", kMedia[m].name);
        json.field("intensity", kIntensities[i]);
        json.field("drop_rate", agg.drop_rate.mean());
        json.field("conflicts", agg.conflicts);
        json.field("repaired", agg.repaired);
        json.field("open", agg.open);
        json.field("max_conflict_duration",
                   static_cast<std::int64_t>(agg.max_duration));
        json.field("mean_rejoin_latency",
                   agg.rejoin.count() > 0 ? agg.rejoin.mean() : -1.0);
        json.field("stalled", agg.stalled);
        json.field("live_valid", agg.all_live_valid);
        json.field("monitor_clean", agg.all_clean);
        json.key("conflict_duration_hist");
        json.begin_array();
        for (std::size_t b = 0; b < kDurationBuckets; ++b) {
          json.value(agg.duration_hist[b]);
        }
        json.end_array();
        // Per-check firing detail — deterministic (counts and slot numbers
        // only), mirrors the dirty-row lines on stdout.
        json.key("checks");
        json.begin_object();
        for (std::size_t c = 0; c < kCheckCount; ++c) {
          json.key(faults::InvariantMonitor::check_name(c));
          json.begin_object();
          json.field("count", agg.checks[c].count);
          json.field("first_slot",
                     static_cast<std::int64_t>(agg.checks[c].first_slot));
          json.field("last_slot",
                     static_cast<std::int64_t>(agg.checks[c].last_slot));
          json.end_object();
        }
        json.key("open");
        json.begin_object();
        json.field("count", agg.open_range.count);
        json.field("first_onset",
                   static_cast<std::int64_t>(agg.open_range.first_slot));
        json.field("last_onset",
                   static_cast<std::int64_t>(agg.open_range.last_slot));
        json.end_object();
        json.end_object();
        json.end_object();
      }
    }
    json.end_array();
    json.end_object();
    bench::end_bench_envelope(json);
    if (!bench::write_atomic(chaos_path, json.str(), "chaos baseline")) {
      return 2;
    }
  }

  sidecar.write("x19_chaos");
  const bool pass = controls_clean && all_repaired && all_valid && no_stalls &&
                    curves_rise;
  std::string detail;
  if (pass) {
    detail = "controls invariant-clean; every injected conflict repaired, "
             "live colorings valid, drop curves rise with intensity";
  } else {
    detail = std::string("failed: ") +
             (!controls_clean ? "[control not clean] " : "") +
             (!all_repaired ? "[unrepaired conflicts] " : "") +
             (!all_valid ? "[invalid live coloring] " : "") +
             (!no_stalls ? "[stalled survivors] " : "") +
             (!curves_rise ? "[drop curve not monotone] " : "");
  }
  return bench::print_verdict(pass, detail);
}
