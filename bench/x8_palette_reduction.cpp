// X8 — Section V (palette reduction): starting from a (d, O(Δ))-coloring and
// its interference-free schedule, one announcement per color class yields a
// (1, Δ+1)-coloring — removing the constants hidden in the MW palette — at
// the cost of one extra TDMA frame.
#include <cstdio>
#include <iostream>

#include "baseline/greedy_coloring.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/mw_protocol.h"
#include "mac/distance_d.h"
#include "mac/palette_reduction.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 2));
  const bool protocol_coloring = cli.get_bool("protocol-coloring", true);
  cli.reject_unknown();

  bench::print_experiment_header(
      "X8: palette reduction to Delta+1 colors",
      "Section V — a (d,O(Delta))-coloring plus one announcement frame gives "
      "a (1, Delta+1)-coloring under SINR");

  const auto phys = bench::phys_for_radius(1.0);
  const double d = phys.mac_distance_d();

  common::Table table({"n", "Delta", "source", "colors before", "colors after",
                       "Delta+1", "extra slots", "valid", "missed"});
  bool ok = true;

  for (std::size_t n : {150UL, 300UL}) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 12.0, 17000 + s);

      // Source coloring: the distributed protocol on G^{d+1} by default
      // (slower), or the centralized greedy for quick runs.
      graph::Coloring coloring;
      const char* source;
      if (protocol_coloring && s == 0) {
        core::MwRunConfig cfg;
        cfg.seed = 23000 + s;
        const auto result = mac::compute_distance_d_coloring(g, d + 1.0, cfg);
        ok &= result.run.metrics.all_decided;
        coloring = result.coloring;
        source = "MW protocol";
      } else {
        coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
        source = "greedy";
      }
      ok &= graph::is_valid_coloring(g, coloring, d + 1.0);

      const auto schedule = mac::TdmaSchedule::from_coloring(coloring);
      const auto reduced =
          mac::reduce_palette_sinr(g, phys, schedule, g.max_degree());
      ok &= reduced.valid && reduced.missed_deliveries == 0 &&
            reduced.palette <= g.max_degree() + 1;

      table.add_row(
          {common::Table::integer(static_cast<long long>(n)),
           common::Table::integer(static_cast<long long>(g.max_degree())),
           source,
           common::Table::integer(static_cast<long long>(coloring.palette_size())),
           common::Table::integer(static_cast<long long>(reduced.palette)),
           common::Table::integer(static_cast<long long>(g.max_degree() + 1)),
           common::Table::integer(static_cast<long long>(reduced.slots_used)),
           reduced.valid ? "yes" : "NO",
           common::Table::integer(
               static_cast<long long>(reduced.missed_deliveries))});
    }
  }
  table.print(std::cout);

  return bench::print_verdict(
      ok, "every reduction produced a valid (1, Delta+1)-coloring with zero "
          "lost announcements");
}
