// X11 — sensitivity to the knowledge assumption (paper Section VI's open
// question: "can we get rid of the knowledge of Δ and n?"). The protocol's
// parameters are derived from Δ and n; here nodes run with ESTIMATES:
//   * overestimates: correctness survives (windows/probabilities only get
//     more conservative) at a near-linear time cost in Δ̂/Δ;
//   * underestimates of Δ: q_s is too large and windows too short — the
//     delivery guarantees behind Theorem 1 erode, violations appear.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 250));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 4));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X11: cost of mis-estimating Delta and n",
      "overestimating the paper's required knowledge is safe but slow; "
      "underestimating Delta breaks the delivery guarantees");

  common::Table table({"estimate", "violations", "invalid_runs",
                       "avg_latency", "latency vs exact"});

  struct Row {
    const char* name;
    double delta_factor;
    double n_factor;
  };
  const Row rows[] = {
      {"exact Delta, exact n", 1.0, 1.0},
      {"Delta x2 (overestimate)", 2.0, 1.0},
      {"Delta x4 (overestimate)", 4.0, 1.0},
      {"n x16 (overestimate)", 1.0, 16.0},
      {"Delta /2 (underestimate)", 0.5, 1.0},
      {"Delta /4 (underestimate)", 0.25, 1.0},
  };

  double exact_latency = 0.0;
  bool over_ok = true, under_breaks = false, exact_ok = true;
  for (const auto& row : rows) {
    std::size_t violations = 0, invalid = 0;
    common::Accumulator latency;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const auto g = bench::uniform_graph_with_density(n, 16.0, 25000 + s);
      core::MwRunConfig cfg;
      cfg.seed = 47000 + s;
      cfg.delta_estimate = static_cast<std::size_t>(
          std::max(1.0, static_cast<double>(g.max_degree()) * row.delta_factor));
      cfg.n_estimate =
          static_cast<std::size_t>(static_cast<double>(n) * row.n_factor);
      const auto r = core::run_mw_coloring(g, cfg);
      violations += r.independence_violations;
      invalid += (r.coloring_valid && r.metrics.all_decided) ? 0 : 1;
      latency.add(static_cast<double>(r.metrics.slots_executed));
    }
    if (row.delta_factor == 1.0 && row.n_factor == 1.0) {
      exact_latency = latency.mean();
      exact_ok = violations == 0 && invalid == 0;
    } else if (row.delta_factor >= 1.0) {
      over_ok &= violations == 0 && invalid == 0;
    } else {
      under_breaks |= violations + invalid > 0;
    }
    table.add_row({row.name,
                   common::Table::integer(static_cast<long long>(violations)),
                   common::Table::integer(static_cast<long long>(invalid)),
                   common::Table::num(latency.mean(), 0),
                   exact_latency > 0
                       ? common::Table::num(latency.mean() / exact_latency, 2)
                       : std::string("1.00")});
  }
  table.print(std::cout);

  return bench::print_verdict(
      exact_ok && over_ok && under_breaks,
      "exact/overestimated knowledge stays correct (overestimates pay time); "
      "underestimating Delta visibly breaks correctness");
}
