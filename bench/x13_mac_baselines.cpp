// X13 — the MAC design space around Theorem 3: slots needed to serve one
// full local-broadcast round (every node → all neighbors) by
//   (a) the paper's coloring TDMA: a distance-(d+1) coloring frame —
//       deterministic, distributed-computable, 100% delivery;
//   (b) a centralized greedy SINR link scheduler (related-work refs [16–19])
//       — the "what could a global optimizer do" yardstick;
//   (c) [21]-style slotted ALOHA with p = Θ(1/Δ) — schedule-free,
//       probabilistic completion;
//   (d) idealized CSMA — carrier sensing improves on ALOHA but stays
//       probabilistic.
#include <cstdio>
#include <iostream>

#include "baseline/greedy_coloring.h"
#include "baseline/local_broadcast.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "mac/link_scheduler.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 200));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X13: MAC baselines for one local-broadcast round",
      "coloring TDMA (distributed, deterministic) vs centralized greedy link "
      "scheduling vs ALOHA/CSMA (schedule-free, probabilistic)");

  const auto phys = bench::phys_for_radius(1.0);
  const double d = phys.mac_distance_d();

  common::Table table({"mechanism", "slots (avg)", "completion",
                       "deterministic?"});
  common::Accumulator tdma_slots, link_slots, aloha_slots, csma_slots;
  std::size_t aloha_done = 0, csma_done = 0, link_feasible = 0;

  for (std::uint64_t s = 0; s < seeds; ++s) {
    const auto g = bench::uniform_graph_with_density(n, 14.0, 33000 + s);

    const auto schedule = mac::TdmaSchedule::from_coloring(
        baseline::greedy_distance_d_coloring(g, d + 1.0));
    tdma_slots.add(schedule.frame_length());

    const auto requests = mac::all_neighbor_links(g);
    const auto links = mac::greedy_link_schedule(g, phys, requests);
    link_feasible +=
        mac::count_infeasible_links(g, phys, requests, links) == 0;
    link_slots.add(links.slots);

    const auto aloha =
        baseline::run_local_broadcast_known_delta(g, phys, 0.3, 3.0, 61000 + s);
    aloha_done += aloha.completed;
    aloha_slots.add(static_cast<double>(aloha.slots));

    const auto csma = baseline::run_csma_local_broadcast(
        g, phys, 0.25, 4.0, 200000, 67000 + s);
    csma_done += csma.completed;
    csma_slots.add(static_cast<double>(csma.slots));
  }

  char frac[16];
  table.add_row({"coloring TDMA (paper)", common::Table::num(tdma_slots.mean(), 1),
                 "guaranteed", "yes"});
  std::snprintf(frac, sizeof frac, "%zu/%llu ok", link_feasible,
                static_cast<unsigned long long>(seeds));
  table.add_row({"greedy link schedule (centralized)",
                 common::Table::num(link_slots.mean(), 1), frac, "yes"});
  std::snprintf(frac, sizeof frac, "%zu/%llu", aloha_done,
                static_cast<unsigned long long>(seeds));
  table.add_row({"ALOHA p=0.3/Delta ([21]-style)",
                 common::Table::num(aloha_slots.mean(), 1), frac, "no"});
  std::snprintf(frac, sizeof frac, "%zu/%llu", csma_done,
                static_cast<unsigned long long>(seeds));
  table.add_row({"idealized CSMA", common::Table::num(csma_slots.mean(), 1),
                 frac, "no"});
  table.print(std::cout);

  std::printf("note: link scheduling serves each directed pair separately; "
              "TDMA serves all neighbors of a sender in ONE slot, which is "
              "why it beats per-link scheduling on broadcast workloads.\n");

  const bool ok = link_feasible == seeds && aloha_done == seeds &&
                  csma_done == seeds &&
                  tdma_slots.mean() < aloha_slots.mean();
  return bench::print_verdict(
      ok,
      "all mechanisms complete; the paper's TDMA needs the fewest slots and "
      "is the only distributed deterministic one");
}
