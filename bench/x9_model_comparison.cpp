// X9 — what the paper's re-tuning buys: the same MW state machine run with
// (a) graph-model constants under the graph-based medium (the original
//     algorithm in its own model) — works, fastest;
// (b) graph-model constants under the SINR medium — the delivery guarantees
//     its windows assume no longer hold, so independence violations and
//     invalid colorings appear;
// (c) the paper's SINR-tuned constants under the SINR medium — works.
#include <cstdio>
#include <iostream>

#include "baseline/mw_graph_model.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/mw_protocol.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 300));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X9: graph-model vs SINR-tuned MW",
      "the graph-model algorithm breaks under SINR (violations/invalid "
      "colorings); the paper's re-tuned constants restore correctness at a "
      "constant-factor time cost");

  common::Table table({"configuration", "runs", "violations", "invalid",
                       "colors(avg)", "latency(avg)"});

  struct Row {
    std::size_t violations = 0;
    std::size_t invalid = 0;
    common::Accumulator colors, latency;
  };
  Row rows[3];
  const char* names[3] = {"graph tuning / graph medium (original MW)",
                          "graph tuning / SINR medium (naive port)",
                          "SINR tuning / SINR medium (this paper)"};

  for (std::uint64_t s = 0; s < seeds; ++s) {
    const auto g = bench::uniform_graph_with_density(n, 18.0, 19000 + s);
    const core::MwRunResult results[3] = {
        baseline::run_mw_graph_model(g, 31000 + s),
        baseline::run_mw_graph_tuning_under_sinr(g, 31000 + s),
        [&] {
          core::MwRunConfig cfg;
          cfg.seed = 31000 + s;
          return core::run_mw_coloring(g, cfg);
        }(),
    };
    for (int k = 0; k < 3; ++k) {
      rows[k].violations += results[k].independence_violations;
      rows[k].invalid +=
          (results[k].coloring_valid && results[k].metrics.all_decided) ? 0 : 1;
      rows[k].colors.add(static_cast<double>(results[k].palette));
      rows[k].latency.add(
          static_cast<double>(results[k].metrics.slots_executed));
    }
  }

  for (int k = 0; k < 3; ++k) {
    table.add_row({names[k],
                   common::Table::integer(static_cast<long long>(seeds)),
                   common::Table::integer(static_cast<long long>(rows[k].violations)),
                   common::Table::integer(static_cast<long long>(rows[k].invalid)),
                   common::Table::num(rows[k].colors.mean(), 1),
                   common::Table::num(rows[k].latency.mean(), 0)});
  }
  table.print(std::cout);

  const bool original_ok = rows[0].violations == 0 && rows[0].invalid == 0;
  const bool naive_breaks = rows[1].violations + rows[1].invalid > 0;
  const bool retuned_ok = rows[2].violations == 0 && rows[2].invalid == 0;
  std::printf("time cost of SINR tuning vs original-in-its-model: %.1fx\n",
              rows[2].latency.mean() / rows[0].latency.mean());

  return bench::print_verdict(
      original_ok && naive_breaks && retuned_ok,
      "original works in its model, naive port breaks under SINR, re-tuned "
      "version is correct under SINR");
}
