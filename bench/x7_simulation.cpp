// X7 — Corollary 1: any uniform point-to-point message-passing algorithm
// running in τ rounds can be simulated under SINR in O(Δ(log n + τ)) slots
// with identical outputs. For flooding/BFS, Luby-MIS and max-id gossip we
// (a) verify bit-identical outputs vs the ideal point-to-point execution and
// (b) account slots as coloring-setup + τ·V and compare against Δ(ln n + τ).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "baseline/greedy_coloring.h"
#include "bench/bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "graph/graph_algos.h"
#include "graph/independent_set.h"
#include "mac/algorithms.h"
#include "mac/distance_d.h"
#include "mac/simulation.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 2));
  cli.reject_unknown();

  bench::print_experiment_header(
      "X7: single-round simulation of message-passing algorithms",
      "Corollary 1 — uniform algorithms simulate under SINR with identical "
      "outputs in O(Delta*(log n + tau)) slots");

  const auto phys = bench::phys_for_radius(1.0);
  const double d = phys.mac_distance_d();

  common::Table table({"algorithm", "n", "Delta", "tau", "V(frame)",
                       "sim slots", "Delta*(ln n+tau)", "ratio", "outputs"});
  bool all_equal = true;
  bool ratios_bounded = true;

  for (std::size_t n : {128UL, 256UL, 512UL}) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      // Flooding terminates only on connected instances; resample until
      // connected (flat-world densities occasionally strand a corner node).
      auto g = bench::uniform_graph_with_density(n, 12.0, 15000 + s);
      for (std::uint64_t retry = 1; !graph::is_connected(g) && retry < 20;
           ++retry) {
        g = bench::uniform_graph_with_density(n, 12.0, 15000 + s + 100 * retry);
      }
      const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
      const auto schedule = mac::TdmaSchedule::from_coloring(coloring);
      const double dln = static_cast<double>(g.max_degree());

      struct Algo {
        const char* name;
        mac::AlgorithmFactory factory;
      };
      const std::uint64_t luby_seed = 500 + s;
      const Algo algos[] = {
          {"flooding/bfs",
           [](graph::NodeId v, const graph::UnitDiskGraph&)
               -> std::unique_ptr<mac::UniformAlgorithm> {
             return std::make_unique<mac::FloodingBfs>(v, 0);
           }},
          {"luby-mis",
           [luby_seed](graph::NodeId v, const graph::UnitDiskGraph&)
               -> std::unique_ptr<mac::UniformAlgorithm> {
             return std::make_unique<mac::LubyMis>(v, luby_seed);
           }},
      };

      for (const auto& algo : algos) {
        auto ref_nodes = mac::instantiate(g, algo.factory);
        auto sim_nodes = mac::instantiate(g, algo.factory);
        const auto ref = mac::run_reference(g, ref_nodes, 600);
        const auto sim =
            mac::run_over_sinr_tdma(g, phys, schedule, sim_nodes, 600);

        bool equal = sim.missed_deliveries == 0 && ref.rounds == sim.rounds;
        if (std::string(algo.name) == "flooding/bfs") {
          for (graph::NodeId v = 0; v < g.size() && equal; ++v) {
            equal = static_cast<mac::FloodingBfs*>(ref_nodes[v].get())
                            ->distance() ==
                        static_cast<mac::FloodingBfs*>(sim_nodes[v].get())
                            ->distance() &&
                    static_cast<mac::FloodingBfs*>(ref_nodes[v].get())
                            ->parent() ==
                        static_cast<mac::FloodingBfs*>(sim_nodes[v].get())
                            ->parent();
          }
        } else {
          for (graph::NodeId v = 0; v < g.size() && equal; ++v) {
            equal = static_cast<mac::LubyMis*>(ref_nodes[v].get())->in_mis() ==
                    static_cast<mac::LubyMis*>(sim_nodes[v].get())->in_mis();
          }
        }
        all_equal &= equal;

        const double budget =
            dln * (std::log(static_cast<double>(n)) +
                   static_cast<double>(ref.rounds));
        const double ratio = static_cast<double>(sim.slots_used) / budget;
        ratios_bounded &= ratio < 40.0;  // constant-factor check
        table.add_row(
            {algo.name, common::Table::integer(static_cast<long long>(n)),
             common::Table::integer(static_cast<long long>(g.max_degree())),
             common::Table::integer(ref.rounds),
             common::Table::integer(schedule.frame_length()),
             common::Table::integer(static_cast<long long>(sim.slots_used)),
             common::Table::num(budget, 0), common::Table::num(ratio, 2),
             equal ? "identical" : "DIFFER"});
      }
    }
  }
  table.print(std::cout);
  std::printf("(ratio = simulated slots / Delta*(ln n + tau); Corollary 1 "
              "asserts it is bounded by a constant)\n");

  // --- General model (Corollary 1, second bullet): per-neighbor messages ---
  // via (i) bundling into one O(sΔ log n)-bit broadcast per round, or (ii)
  // sequential sub-frames with O(s log n)-bit messages (the O(Δ²τ) regime).
  common::Table general_table({"algorithm (general)", "n", "tau", "strategy",
                               "slots", "bundle factor", "outputs"});
  bool general_equal = true;
  for (std::size_t n : {128UL, 256UL}) {
    auto g = bench::uniform_graph_with_density(n, 12.0, 16000);
    const auto coloring = baseline::greedy_distance_d_coloring(g, d + 1.0);
    const auto schedule = mac::TdmaSchedule::from_coloring(coloring);
    auto make = [](graph::NodeId v, const graph::UnitDiskGraph& graph)
        -> std::unique_ptr<mac::GeneralAlgorithm> {
      return std::make_unique<mac::RandomizedMatching>(v, graph, 31337);
    };
    auto ref_nodes = mac::instantiate_general(g, make);
    const auto ref = mac::run_reference_general(g, ref_nodes, 600);

    for (auto strategy :
         {mac::GeneralStrategy::kBundled, mac::GeneralStrategy::kSequential}) {
      auto sim_nodes = mac::instantiate_general(g, make);
      const auto sim = mac::run_general_over_sinr_tdma(g, phys, schedule,
                                                       sim_nodes, 600, strategy);
      bool equal = sim.missed_deliveries == 0;
      for (graph::NodeId v = 0; v < g.size() && equal; ++v) {
        equal = static_cast<mac::RandomizedMatching*>(ref_nodes[v].get())
                    ->partner() ==
                static_cast<mac::RandomizedMatching*>(sim_nodes[v].get())
                    ->partner();
      }
      general_equal &= equal;
      general_table.add_row(
          {"randomized matching",
           common::Table::integer(static_cast<long long>(n)),
           common::Table::integer(ref.rounds),
           strategy == mac::GeneralStrategy::kBundled ? "bundled" : "sequential",
           common::Table::integer(static_cast<long long>(sim.slots_used)),
           common::Table::integer(
               static_cast<long long>(sim.max_bundle_entries)),
           equal ? "identical" : "DIFFER"});
    }
  }
  general_table.print(std::cout);
  all_equal &= general_equal;

  return bench::print_verdict(
      all_equal && ratios_bounded,
      all_equal ? "all simulated outputs bit-identical; slot cost within a "
                  "constant of Delta*(ln n + tau)"
                : "some simulated output differed from the reference");
}
