// Quickstart: deploy a random sensor field, run the SINR-tuned MW coloring,
// and verify the result.
//
//   ./examples/quickstart [--n=200] [--side=5.0] [--seed=1]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/coloring.h"
#include "graph/unit_disk_graph.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 200));
  const double side = cli.get_double("side", 5.0);
  const auto seed = cli.get_seed("seed", 1);
  cli.reject_unknown();

  // 1. Deploy n nodes uniformly in a side×side square; R_T = 1 defines the
  //    unit disk graph (and, implicitly, the physical layer whose
  //    transmission range is exactly R_T).
  common::Rng rng(seed);
  graph::UnitDiskGraph g(geometry::uniform_deployment(n, side, rng), 1.0);
  std::printf("deployed n=%zu nodes, max degree Delta=%zu, avg degree %.1f\n",
              g.size(), g.max_degree(), g.average_degree());

  // 2. Run the distributed coloring under the SINR physical model.
  core::MwRunConfig config;
  config.seed = seed;
  const auto result = core::run_mw_coloring(g, config);
  std::printf("protocol parameters: %s\n", result.params.to_string().c_str());

  // 3. Inspect the outcome.
  std::printf("finished in %lld slots (max node latency %lld)\n",
              static_cast<long long>(result.metrics.slots_executed),
              static_cast<long long>(result.metrics.max_decision_latency()));
  std::printf("colors used: %zu (Theorem 2 bound: %lld), leaders: %zu\n",
              result.palette, static_cast<long long>(result.params.palette_bound()),
              result.leaders.size());
  std::printf("valid (1,*)-coloring: %s, Theorem-1 violations: %zu\n",
              result.coloring_valid ? "yes" : "NO",
              result.independence_violations);

  if (!result.coloring_valid) {
    for (const auto& v : graph::find_coloring_violations(g, result.coloring)) {
      std::printf("  violation: %s\n", v.to_string().c_str());
    }
    return 1;
  }
  return 0;
}
