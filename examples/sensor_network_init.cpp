// Sensor-network initialization — the scenario the paper's introduction
// motivates: nodes of a freshly scattered sensor field wake up at arbitrary
// times with no structure whatsoever, self-organize a coloring under real
// (SINR) interference, derive an interference-free TDMA MAC from it, and
// finally build a data-collection (BFS) tree toward a sink by running a
// classical message-passing algorithm over the simulated MAC (Corollary 1).
//
//   ./examples/sensor_network_init [--n=150] [--side=4.5] [--clusters=4]
//                                  [--seed=7] [--wakeup-window=2000]
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/cli.h"
#include "common/rng.h"
#include "core/mw_protocol.h"
#include "geometry/deployment.h"
#include "graph/graph_algos.h"
#include "mac/algorithms.h"
#include "mac/distance_d.h"
#include "mac/simulation.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 150));
  const double side = cli.get_double("side", 4.5);
  const auto clusters = static_cast<std::size_t>(cli.get_int("clusters", 4));
  const auto seed = cli.get_seed("seed", 7);
  const auto wakeup_window = cli.get_int("wakeup-window", 2000);
  cli.reject_unknown();

  // --- Deployment: clustered field (hotspots around collection points). ---
  common::Rng rng(seed);
  graph::UnitDiskGraph g(
      geometry::clustered_deployment(n, side, clusters, 1.2, rng), 1.0);
  std::printf("[deploy] n=%zu clusters=%zu Delta=%zu connected=%s\n", g.size(),
              clusters, g.max_degree(), graph::is_connected(g) ? "yes" : "no");

  sinr::SinrParams phys;
  phys.noise = phys.power / (2.0 * phys.beta * std::pow(g.radius(), phys.alpha));
  const double d = phys.mac_distance_d();
  std::printf("[phys]   %s\n", phys.to_string().c_str());

  // --- Phase 1: distributed (d+1)-coloring with asynchronous wake-ups. ---
  core::MwRunConfig config;
  config.seed = seed;
  config.wakeup = core::WakeupKind::kUniform;
  config.wakeup_window = wakeup_window;
  const auto coloring = mac::compute_distance_d_coloring(g, d + 1.0, config);
  std::printf("[color]  %s\n", coloring.run.summary().c_str());
  if (!coloring.run.metrics.all_decided ||
      !graph::is_valid_coloring(g, coloring.coloring, d + 1.0)) {
    std::printf("[color]  FAILED to produce a valid (d+1,*)-coloring\n");
    return 1;
  }

  // --- Phase 2: TDMA MAC from the coloring (Theorem 3). ---
  const auto schedule = mac::TdmaSchedule::from_coloring(coloring.coloring);
  const auto audit = mac::audit_tdma_sinr(g, phys, schedule);
  std::printf("[mac]    %s\n", audit.summary().c_str());
  if (!audit.interference_free()) {
    std::printf("[mac]    schedule is not interference-free!\n");
    return 1;
  }

  // --- Phase 3: build the collection tree via simulated flooding. ---
  const graph::NodeId sink = 0;
  auto nodes = mac::instantiate(g, [&](graph::NodeId v, const graph::UnitDiskGraph&) {
    return std::make_unique<mac::FloodingBfs>(v, sink);
  });
  const auto sim = mac::run_over_sinr_tdma(g, phys, schedule, nodes, 500);
  std::printf("[tree]   %s\n", sim.summary().c_str());

  const auto oracle = graph::bfs_distances(g, sink);
  std::size_t matched = 0;
  std::size_t reachable = 0;
  std::uint32_t depth = 0;
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (oracle[v] == graph::kUnreachable) continue;
    ++reachable;
    const auto* algo = static_cast<mac::FloodingBfs*>(nodes[v].get());
    if (algo->distance() == oracle[v]) ++matched;
    depth = std::max(depth, oracle[v]);
  }
  std::printf(
      "[tree]   %zu/%zu reachable nodes at oracle depth (tree depth %u), "
      "%lld radio slots total\n",
      matched, reachable, depth, static_cast<long long>(sim.slots_used));
  return matched == reachable ? 0 : 1;
}
