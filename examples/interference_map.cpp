// Renders an ASCII SINR map around a transmitter: where a message can be
// decoded as interferers are added. Illustrates the model quantities R_max,
// R_T (the paper's transmission range) and the additive nature of SINR
// interference that distinguishes the physical model from the graph model.
//
//   ./examples/interference_map [--interferers=3] [--beta=1.5] [--alpha=4.0]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "sinr/medium_field.h"
#include "sinr/params.h"
#include "sinr/reception.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto interferers = static_cast<int>(cli.get_int("interferers", 3));
  sinr::SinrParams phys;
  phys.alpha = cli.get_double("alpha", 4.0);
  phys.beta = cli.get_double("beta", 1.5);
  cli.reject_unknown();

  phys.noise = phys.power / (2.0 * phys.beta * 1.0);  // R_T = 1
  phys.validate();
  std::printf("%s\n", phys.to_string().c_str());
  std::printf("R_max=%.3f R_T=%.3f (paper: R_T=(P/2Nbeta)^(1/alpha))\n\n",
              phys.r_max(), phys.r_t());

  // Sender at the origin; interferers on a ring of radius 2.5 R_T.
  std::vector<sinr::Transmitter> txs{{{0.0, 0.0}}};
  for (int k = 0; k < interferers; ++k) {
    const double angle = 2.0 * M_PI * k / std::max(interferers, 1);
    txs.push_back({{2.5 * std::cos(angle), 2.5 * std::sin(angle)}});
  }

  std::printf("map: 'S' sender, 'I' interferer, '#' decodable from S, "
              "'+' SINR>=beta but out of range, '.' undecodable\n\n");
  const double extent = 3.2;
  const int rows = 33;
  const int cols = 65;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = -extent + 2.0 * extent * c / (cols - 1);
      const double y = extent - 2.0 * extent * r / (rows - 1);
      const geometry::Point p{x, y};
      char ch = '.';
      bool is_tx = false;
      for (std::size_t i = 0; i < txs.size(); ++i) {
        if (geometry::distance(p, txs[i].position) < 0.12) {
          ch = i == 0 ? 'S' : 'I';
          is_tx = true;
          break;
        }
      }
      if (!is_tx) {
        if (sinr::decodes(phys, p, txs, 0)) {
          ch = '#';
        } else if (sinr::sinr_at(phys, p, txs, 0) >= phys.beta) {
          ch = '+';  // passes SINR but fails the delta <= R_T range gate
        }
      }
      std::putchar(ch);
    }
    std::putchar('\n');
  }

  // Quantify the shrinkage of the decodable area with interferer count.
  std::printf("\ndecodable fraction of the R_T disc around S:\n");
  for (int k = 0; k <= interferers; ++k) {
    std::vector<sinr::Transmitter> subset(txs.begin(), txs.begin() + 1 + k);
    int covered = 0;
    int total = 0;
    for (double x = -1.0; x <= 1.0; x += 0.02) {
      for (double y = -1.0; y <= 1.0; y += 0.02) {
        if (x * x + y * y > 1.0 || (x == 0.0 && y == 0.0)) continue;
        ++total;
        covered += sinr::decodes(phys, {x, y}, subset, 0);
      }
    }
    std::printf("  %d interferer(s): %5.1f%%\n", k,
                100.0 * covered / std::max(total, 1));
  }
  return 0;
}
