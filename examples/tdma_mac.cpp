// TDMA MAC under SINR: why the paper needs a distance-(d+1) coloring.
//
// Builds colorings at distances 1, 2 and ⌈d+1⌉ for the same network, turns
// each into a TDMA schedule, and audits one full broadcast frame under both
// the graph-based collision model and the SINR physical model; also runs the
// slotted-ALOHA baseline for contrast. Distance-2 is the textbook sufficient
// condition in the graph model — and visibly insufficient under SINR.
//
//   ./examples/tdma_mac [--n=250] [--side=4.5] [--seed=3] [--aloha-p=0.05]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "baseline/aloha.h"
#include "baseline/greedy_coloring.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "geometry/deployment.h"
#include "mac/tdma.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 250));
  const double side = cli.get_double("side", 4.5);
  const auto seed = cli.get_seed("seed", 3);
  const double aloha_p = cli.get_double("aloha-p", 0.05);
  cli.reject_unknown();

  common::Rng rng(seed);
  graph::UnitDiskGraph g(geometry::uniform_deployment(n, side, rng), 1.0);
  sinr::SinrParams phys;
  phys.noise = phys.power / (2.0 * phys.beta * std::pow(g.radius(), phys.alpha));
  const double d = phys.mac_distance_d();
  std::printf("n=%zu Delta=%zu, Theorem-3 constant d=%.3f (schedule needs a "
              "distance-%.3f coloring)\n",
              g.size(), g.max_degree(), d, d + 1.0);

  common::Table table({"coloring", "colors (frame)", "graph-model delivery",
                       "SINR delivery", "SINR interference-free"});
  for (double dist : {1.0, 2.0, d + 1.0}) {
    const auto coloring = baseline::greedy_distance_d_coloring(g, dist);
    const auto schedule = mac::TdmaSchedule::from_coloring(coloring);
    const auto graph_audit = mac::audit_tdma_graph_model(g, schedule);
    const auto sinr_audit = mac::audit_tdma_sinr(g, phys, schedule);
    char label[32];
    std::snprintf(label, sizeof label, "distance-%.2f", dist);
    table.add_row({label,
                   common::Table::integer(schedule.frame_length()),
                   common::Table::percent(graph_audit.delivery_rate(), 2),
                   common::Table::percent(sinr_audit.delivery_rate(), 2),
                   sinr_audit.interference_free() ? "yes" : "no"});
  }
  table.print(std::cout);

  const auto aloha =
      baseline::run_aloha_local_broadcast(g, phys, aloha_p, 2'000'000, seed);
  std::printf(
      "\nALOHA baseline (p=%.3f): one local broadcast per node takes %lld "
      "slots to complete (p95 %lld) — versus one deterministic TDMA frame.\n",
      aloha_p, static_cast<long long>(aloha.slots),
      static_cast<long long>(aloha.slots_p95));
  return 0;
}
