// Visualizes one protocol execution as a state-population timeline: the
// initial listening wave, leader election in class 0, the request/assign
// pipeline, and the cascaded per-class competitions until everyone holds a
// color. A compact way to *see* the MW algorithm's phase structure.
//
//   ./examples/protocol_timeline [--n=150] [--side=4.5] [--seed=2]
//                                [--wakeup-window=0]
#include <algorithm>
#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/timeline.h"
#include "geometry/deployment.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 150));
  const double side = cli.get_double("side", 4.5);
  const auto seed = cli.get_seed("seed", 2);
  const auto wakeup_window = cli.get_int("wakeup-window", 0);
  cli.reject_unknown();

  common::Rng rng(seed);
  graph::UnitDiskGraph g(geometry::uniform_deployment(n, side, rng), 1.0);
  std::printf("n=%zu Delta=%zu avg_deg=%.1f\n\n", g.size(), g.max_degree(),
              g.average_degree());

  core::MwRunConfig config;
  config.seed = seed;
  if (wakeup_window > 0) {
    config.wakeup = core::WakeupKind::kUniform;
    config.wakeup_window = wakeup_window;
  }

  core::MwInstance instance(g, config);
  core::StateTimeline timeline(
      std::max<radio::Slot>(1, instance.params().listen_slots / 64));
  timeline.attach(instance);
  const auto result = instance.run();

  std::printf("%s\n", timeline.render_ascii().c_str());
  // 50% from the sampled timeline; 100% exactly from the run metrics (the
  // final decisions can fall between samples).
  radio::Slot last_decision = 0;
  for (radio::Slot s : result.metrics.decision_slot) {
    last_decision = std::max(last_decision, s);
  }
  std::printf("50%% of nodes decided by slot ~%lld, 100%% at slot %lld\n",
              static_cast<long long>(timeline.decided_fraction_slot(0.5)),
              static_cast<long long>(last_decision));
  std::printf("result: %s\n", result.summary().c_str());
  return result.coloring_valid ? 0 : 1;
}
