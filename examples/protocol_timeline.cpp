// Visualizes one protocol execution as a state-population timeline — and
// demonstrates the observability layer end-to-end while doing it:
//
//   1. record  — attach an obs::RunObservation to the instance, run it;
//   2. export  — write the event trace as JSONL (and optionally a Chrome
//                trace for chrome://tracing / ui.perfetto.dev);
//   3. analyze — read the JSONL back, rebuild the per-slot state timeline
//                and the per-node lifecycle digest purely from the events.
//
// The rendered chart shows the MW algorithm's phase structure: the initial
// listening wave, leader election in class 0, the request/assign pipeline,
// and the cascaded per-class competitions until everyone holds a color.
//
//   ./examples/protocol_timeline [--n=150] [--side=4.5] [--seed=2]
//                                [--wakeup-window=0] [--trace-out=...]
//                                [--chrome-out=...] [--digest-rows=8]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.h"
#include "common/rng.h"
#include "core/mw_protocol.h"
#include "core/timeline.h"
#include "geometry/deployment.h"
#include "obs/export.h"
#include "obs/observation.h"

int main(int argc, char** argv) {
  using namespace sinrcolor;
  const common::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 150));
  const double side = cli.get_double("side", 4.5);
  const auto seed = cli.get_seed("seed", 2);
  const auto wakeup_window = cli.get_int("wakeup-window", 0);
  const std::string trace_out = cli.get("trace-out", "");
  const std::string chrome_out = cli.get("chrome-out", "");
  const auto digest_rows =
      static_cast<std::size_t>(cli.get_int("digest-rows", 8));
  cli.reject_unknown();

  common::Rng rng(seed);
  graph::UnitDiskGraph g(geometry::uniform_deployment(n, side, rng), 1.0);
  std::printf("n=%zu Delta=%zu avg_deg=%.1f\n\n", g.size(), g.max_degree(),
              g.average_degree());

  core::MwRunConfig config;
  config.seed = seed;
  if (wakeup_window > 0) {
    config.wakeup = core::WakeupKind::kUniform;
    config.wakeup_window = wakeup_window;
  }

  // 1. Record: every tx/delivery/drop/transition/decision lands in the ring.
  obs::RunObservation observation(std::size_t{1} << 22);
  core::MwInstance instance(g, config);
  instance.attach_observation(&observation);
  const auto result = instance.run();

  // 2. Export: JSONL (round-trippable) and, on request, a Perfetto trace.
  obs::TraceMeta meta;
  meta.node_count = g.size();
  meta.seed = seed;
  meta.scenario = "color";
  meta.recorded = observation.trace.recorded();
  meta.dropped = observation.trace.dropped();
  std::stringstream jsonl;
  obs::write_jsonl(meta, observation.trace.events(), jsonl);
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << jsonl.str();
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(meta.recorded),
                static_cast<unsigned long long>(meta.dropped));
  }
  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out);
    obs::write_chrome_trace(meta, observation.trace.events(), out);
    std::printf("chrome trace written to %s\n", chrome_out.c_str());
  }

  // 3. Analyze from the exported bytes alone — the live instance is no
  // longer consulted, proving the trace is self-contained.
  obs::TraceMeta parsed_meta;
  std::vector<obs::TraceEvent> events;
  std::string error;
  if (!obs::read_jsonl(jsonl, parsed_meta, events, &error)) {
    std::fprintf(stderr, "trace round-trip failed: %s\n", error.c_str());
    return 2;
  }

  const auto interval =
      std::max<radio::Slot>(1, instance.params().listen_slots / 64);
  const auto timeline = core::timeline_from_trace(
      events, static_cast<std::size_t>(parsed_meta.node_count), interval);
  std::printf("%s\n", timeline.render_ascii().c_str());
  std::printf("50%% of nodes decided by slot ~%lld, 100%% by ~%lld\n",
              static_cast<long long>(timeline.decided_fraction_slot(0.5)),
              static_cast<long long>(timeline.decided_fraction_slot(1.0)));

  const auto digest = obs::build_digest(
      events, static_cast<std::size_t>(parsed_meta.node_count));
  std::vector<obs::NodeDigest> head(
      digest.begin(),
      digest.begin() +
          static_cast<std::ptrdiff_t>(std::min(digest_rows, digest.size())));
  std::printf("\nper-node digest (first %zu of %zu nodes):\n%s", head.size(),
              digest.size(), obs::render_digest(head).c_str());

  // Decision slots reconstructed from events must equal the simulator's own
  // metrics — the digest is trustworthy, not approximate.
  for (graph::NodeId v = 0; v < g.size(); ++v) {
    if (digest[v].decision_slot != result.metrics.decision_slot[v]) {
      std::fprintf(stderr, "digest drift at node %u: %lld != %lld\n", v,
                   static_cast<long long>(digest[v].decision_slot),
                   static_cast<long long>(result.metrics.decision_slot[v]));
      return 2;
    }
  }
  std::printf("\ndigest decision slots match RunMetrics exactly (%zu nodes)\n",
              digest.size());
  std::printf("result: %s\n", result.summary().c_str());
  return result.coloring_valid ? 0 : 1;
}
