# Empty dependencies file for interference_map.
# This may be replaced when dependencies are built.
