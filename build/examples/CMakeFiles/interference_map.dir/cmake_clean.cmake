file(REMOVE_RECURSE
  "CMakeFiles/interference_map.dir/interference_map.cpp.o"
  "CMakeFiles/interference_map.dir/interference_map.cpp.o.d"
  "interference_map"
  "interference_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
