# Empty compiler generated dependencies file for protocol_timeline.
# This may be replaced when dependencies are built.
