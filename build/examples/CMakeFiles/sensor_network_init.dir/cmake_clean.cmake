file(REMOVE_RECURSE
  "CMakeFiles/sensor_network_init.dir/sensor_network_init.cpp.o"
  "CMakeFiles/sensor_network_init.dir/sensor_network_init.cpp.o.d"
  "sensor_network_init"
  "sensor_network_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_network_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
