# Empty dependencies file for sensor_network_init.
# This may be replaced when dependencies are built.
