file(REMOVE_RECURSE
  "CMakeFiles/tdma_mac.dir/tdma_mac.cpp.o"
  "CMakeFiles/tdma_mac.dir/tdma_mac.cpp.o.d"
  "tdma_mac"
  "tdma_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdma_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
