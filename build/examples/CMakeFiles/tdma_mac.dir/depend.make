# Empty dependencies file for tdma_mac.
# This may be replaced when dependencies are built.
