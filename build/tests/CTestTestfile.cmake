# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sinr_test[1]_include.cmake")
include("/root/repo/build/tests/radio_test[1]_include.cmake")
include("/root/repo/build/tests/core_params_test[1]_include.cmake")
include("/root/repo/build/tests/core_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/mw_node_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/lemma4_test[1]_include.cmake")
include("/root/repo/build/tests/mac_test[1]_include.cmake")
include("/root/repo/build/tests/theorem3_grid_test[1]_include.cmake")
include("/root/repo/build/tests/general_model_test[1]_include.cmake")
include("/root/repo/build/tests/fading_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
