file(REMOVE_RECURSE
  "CMakeFiles/general_model_test.dir/general_model_test.cpp.o"
  "CMakeFiles/general_model_test.dir/general_model_test.cpp.o.d"
  "general_model_test"
  "general_model_test.pdb"
  "general_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
