# Empty dependencies file for general_model_test.
# This may be replaced when dependencies are built.
