file(REMOVE_RECURSE
  "CMakeFiles/lemma4_test.dir/lemma4_test.cpp.o"
  "CMakeFiles/lemma4_test.dir/lemma4_test.cpp.o.d"
  "lemma4_test"
  "lemma4_test.pdb"
  "lemma4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
