file(REMOVE_RECURSE
  "CMakeFiles/theorem3_grid_test.dir/theorem3_grid_test.cpp.o"
  "CMakeFiles/theorem3_grid_test.dir/theorem3_grid_test.cpp.o.d"
  "theorem3_grid_test"
  "theorem3_grid_test.pdb"
  "theorem3_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem3_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
