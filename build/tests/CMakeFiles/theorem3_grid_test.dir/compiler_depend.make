# Empty compiler generated dependencies file for theorem3_grid_test.
# This may be replaced when dependencies are built.
