# Empty dependencies file for mw_node_test.
# This may be replaced when dependencies are built.
