
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mw_node_test.cpp" "tests/CMakeFiles/mw_node_test.dir/mw_node_test.cpp.o" "gcc" "tests/CMakeFiles/mw_node_test.dir/mw_node_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_sinr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
