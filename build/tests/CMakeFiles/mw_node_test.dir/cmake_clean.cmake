file(REMOVE_RECURSE
  "CMakeFiles/mw_node_test.dir/mw_node_test.cpp.o"
  "CMakeFiles/mw_node_test.dir/mw_node_test.cpp.o.d"
  "mw_node_test"
  "mw_node_test.pdb"
  "mw_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
