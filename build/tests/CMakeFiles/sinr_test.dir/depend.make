# Empty dependencies file for sinr_test.
# This may be replaced when dependencies are built.
