file(REMOVE_RECURSE
  "CMakeFiles/sinr_test.dir/sinr_test.cpp.o"
  "CMakeFiles/sinr_test.dir/sinr_test.cpp.o.d"
  "sinr_test"
  "sinr_test.pdb"
  "sinr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
