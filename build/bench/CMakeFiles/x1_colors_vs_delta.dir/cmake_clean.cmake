file(REMOVE_RECURSE
  "CMakeFiles/x1_colors_vs_delta.dir/x1_colors_vs_delta.cpp.o"
  "CMakeFiles/x1_colors_vs_delta.dir/x1_colors_vs_delta.cpp.o.d"
  "x1_colors_vs_delta"
  "x1_colors_vs_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x1_colors_vs_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
