# Empty compiler generated dependencies file for x1_colors_vs_delta.
# This may be replaced when dependencies are built.
