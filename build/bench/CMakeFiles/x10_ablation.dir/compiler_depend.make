# Empty compiler generated dependencies file for x10_ablation.
# This may be replaced when dependencies are built.
