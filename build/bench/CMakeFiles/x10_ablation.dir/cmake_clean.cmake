file(REMOVE_RECURSE
  "CMakeFiles/x10_ablation.dir/x10_ablation.cpp.o"
  "CMakeFiles/x10_ablation.dir/x10_ablation.cpp.o.d"
  "x10_ablation"
  "x10_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x10_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
