file(REMOVE_RECURSE
  "CMakeFiles/x14_failures.dir/x14_failures.cpp.o"
  "CMakeFiles/x14_failures.dir/x14_failures.cpp.o.d"
  "x14_failures"
  "x14_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x14_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
