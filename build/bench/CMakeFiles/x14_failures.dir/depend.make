# Empty dependencies file for x14_failures.
# This may be replaced when dependencies are built.
