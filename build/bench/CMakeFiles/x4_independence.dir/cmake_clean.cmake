file(REMOVE_RECURSE
  "CMakeFiles/x4_independence.dir/x4_independence.cpp.o"
  "CMakeFiles/x4_independence.dir/x4_independence.cpp.o.d"
  "x4_independence"
  "x4_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x4_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
