# Empty dependencies file for x4_independence.
# This may be replaced when dependencies are built.
