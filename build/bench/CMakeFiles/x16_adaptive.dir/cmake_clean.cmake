file(REMOVE_RECURSE
  "CMakeFiles/x16_adaptive.dir/x16_adaptive.cpp.o"
  "CMakeFiles/x16_adaptive.dir/x16_adaptive.cpp.o.d"
  "x16_adaptive"
  "x16_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x16_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
