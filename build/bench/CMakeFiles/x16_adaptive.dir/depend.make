# Empty dependencies file for x16_adaptive.
# This may be replaced when dependencies are built.
