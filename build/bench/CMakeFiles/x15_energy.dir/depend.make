# Empty dependencies file for x15_energy.
# This may be replaced when dependencies are built.
