file(REMOVE_RECURSE
  "CMakeFiles/x15_energy.dir/x15_energy.cpp.o"
  "CMakeFiles/x15_energy.dir/x15_energy.cpp.o.d"
  "x15_energy"
  "x15_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x15_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
