# Empty compiler generated dependencies file for x6_tdma_mac.
# This may be replaced when dependencies are built.
