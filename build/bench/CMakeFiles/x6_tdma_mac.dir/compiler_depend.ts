# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for x6_tdma_mac.
