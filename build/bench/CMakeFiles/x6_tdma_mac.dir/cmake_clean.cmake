file(REMOVE_RECURSE
  "CMakeFiles/x6_tdma_mac.dir/x6_tdma_mac.cpp.o"
  "CMakeFiles/x6_tdma_mac.dir/x6_tdma_mac.cpp.o.d"
  "x6_tdma_mac"
  "x6_tdma_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x6_tdma_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
