file(REMOVE_RECURSE
  "CMakeFiles/x3_time_vs_delta.dir/x3_time_vs_delta.cpp.o"
  "CMakeFiles/x3_time_vs_delta.dir/x3_time_vs_delta.cpp.o.d"
  "x3_time_vs_delta"
  "x3_time_vs_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x3_time_vs_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
