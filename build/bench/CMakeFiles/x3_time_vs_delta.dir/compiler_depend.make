# Empty compiler generated dependencies file for x3_time_vs_delta.
# This may be replaced when dependencies are built.
