file(REMOVE_RECURSE
  "CMakeFiles/x13_mac_baselines.dir/x13_mac_baselines.cpp.o"
  "CMakeFiles/x13_mac_baselines.dir/x13_mac_baselines.cpp.o.d"
  "x13_mac_baselines"
  "x13_mac_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x13_mac_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
