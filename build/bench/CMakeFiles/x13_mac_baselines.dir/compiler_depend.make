# Empty compiler generated dependencies file for x13_mac_baselines.
# This may be replaced when dependencies are built.
