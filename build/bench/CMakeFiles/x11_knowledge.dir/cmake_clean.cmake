file(REMOVE_RECURSE
  "CMakeFiles/x11_knowledge.dir/x11_knowledge.cpp.o"
  "CMakeFiles/x11_knowledge.dir/x11_knowledge.cpp.o.d"
  "x11_knowledge"
  "x11_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x11_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
