# Empty dependencies file for x11_knowledge.
# This may be replaced when dependencies are built.
