# Empty dependencies file for x8_palette_reduction.
# This may be replaced when dependencies are built.
