file(REMOVE_RECURSE
  "CMakeFiles/x8_palette_reduction.dir/x8_palette_reduction.cpp.o"
  "CMakeFiles/x8_palette_reduction.dir/x8_palette_reduction.cpp.o.d"
  "x8_palette_reduction"
  "x8_palette_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x8_palette_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
