file(REMOVE_RECURSE
  "CMakeFiles/x2_time_vs_n.dir/x2_time_vs_n.cpp.o"
  "CMakeFiles/x2_time_vs_n.dir/x2_time_vs_n.cpp.o.d"
  "x2_time_vs_n"
  "x2_time_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x2_time_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
