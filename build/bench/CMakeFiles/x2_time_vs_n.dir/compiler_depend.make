# Empty compiler generated dependencies file for x2_time_vs_n.
# This may be replaced when dependencies are built.
