# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for x2_time_vs_n.
