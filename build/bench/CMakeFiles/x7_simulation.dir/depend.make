# Empty dependencies file for x7_simulation.
# This may be replaced when dependencies are built.
