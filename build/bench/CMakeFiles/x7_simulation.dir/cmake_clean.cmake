file(REMOVE_RECURSE
  "CMakeFiles/x7_simulation.dir/x7_simulation.cpp.o"
  "CMakeFiles/x7_simulation.dir/x7_simulation.cpp.o.d"
  "x7_simulation"
  "x7_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x7_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
