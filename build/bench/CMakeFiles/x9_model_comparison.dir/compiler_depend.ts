# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for x9_model_comparison.
