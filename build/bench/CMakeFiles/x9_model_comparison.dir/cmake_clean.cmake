file(REMOVE_RECURSE
  "CMakeFiles/x9_model_comparison.dir/x9_model_comparison.cpp.o"
  "CMakeFiles/x9_model_comparison.dir/x9_model_comparison.cpp.o.d"
  "x9_model_comparison"
  "x9_model_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x9_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
