# Empty dependencies file for x9_model_comparison.
# This may be replaced when dependencies are built.
