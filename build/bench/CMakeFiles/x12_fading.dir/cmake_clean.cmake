file(REMOVE_RECURSE
  "CMakeFiles/x12_fading.dir/x12_fading.cpp.o"
  "CMakeFiles/x12_fading.dir/x12_fading.cpp.o.d"
  "x12_fading"
  "x12_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x12_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
