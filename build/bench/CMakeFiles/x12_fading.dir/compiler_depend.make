# Empty compiler generated dependencies file for x12_fading.
# This may be replaced when dependencies are built.
