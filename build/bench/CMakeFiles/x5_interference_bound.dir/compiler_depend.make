# Empty compiler generated dependencies file for x5_interference_bound.
# This may be replaced when dependencies are built.
