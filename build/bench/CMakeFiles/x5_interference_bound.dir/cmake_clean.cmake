file(REMOVE_RECURSE
  "CMakeFiles/x5_interference_bound.dir/x5_interference_bound.cpp.o"
  "CMakeFiles/x5_interference_bound.dir/x5_interference_bound.cpp.o.d"
  "x5_interference_bound"
  "x5_interference_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x5_interference_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
