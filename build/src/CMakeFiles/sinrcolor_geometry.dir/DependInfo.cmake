
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/deployment.cpp" "src/CMakeFiles/sinrcolor_geometry.dir/geometry/deployment.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_geometry.dir/geometry/deployment.cpp.o.d"
  "/root/repo/src/geometry/grid_index.cpp" "src/CMakeFiles/sinrcolor_geometry.dir/geometry/grid_index.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_geometry.dir/geometry/grid_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
