# Empty dependencies file for sinrcolor_geometry.
# This may be replaced when dependencies are built.
