file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_geometry.dir/geometry/deployment.cpp.o"
  "CMakeFiles/sinrcolor_geometry.dir/geometry/deployment.cpp.o.d"
  "CMakeFiles/sinrcolor_geometry.dir/geometry/grid_index.cpp.o"
  "CMakeFiles/sinrcolor_geometry.dir/geometry/grid_index.cpp.o.d"
  "libsinrcolor_geometry.a"
  "libsinrcolor_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
