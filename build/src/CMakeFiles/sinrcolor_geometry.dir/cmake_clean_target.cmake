file(REMOVE_RECURSE
  "libsinrcolor_geometry.a"
)
