
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sinr/fading.cpp" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/fading.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/fading.cpp.o.d"
  "/root/repo/src/sinr/medium_field.cpp" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/medium_field.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/medium_field.cpp.o.d"
  "/root/repo/src/sinr/params.cpp" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/params.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/params.cpp.o.d"
  "/root/repo/src/sinr/probes.cpp" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/probes.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/probes.cpp.o.d"
  "/root/repo/src/sinr/reception.cpp" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/reception.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_sinr.dir/sinr/reception.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
