file(REMOVE_RECURSE
  "libsinrcolor_sinr.a"
)
