# Empty compiler generated dependencies file for sinrcolor_sinr.
# This may be replaced when dependencies are built.
