file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_sinr.dir/sinr/fading.cpp.o"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/fading.cpp.o.d"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/medium_field.cpp.o"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/medium_field.cpp.o.d"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/params.cpp.o"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/params.cpp.o.d"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/probes.cpp.o"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/probes.cpp.o.d"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/reception.cpp.o"
  "CMakeFiles/sinrcolor_sinr.dir/sinr/reception.cpp.o.d"
  "libsinrcolor_sinr.a"
  "libsinrcolor_sinr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_sinr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
