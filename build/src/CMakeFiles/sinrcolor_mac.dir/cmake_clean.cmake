file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_mac.dir/mac/algorithms.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/algorithms.cpp.o.d"
  "CMakeFiles/sinrcolor_mac.dir/mac/distance_d.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/distance_d.cpp.o.d"
  "CMakeFiles/sinrcolor_mac.dir/mac/link_scheduler.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/link_scheduler.cpp.o.d"
  "CMakeFiles/sinrcolor_mac.dir/mac/message_passing.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/message_passing.cpp.o.d"
  "CMakeFiles/sinrcolor_mac.dir/mac/palette_reduction.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/palette_reduction.cpp.o.d"
  "CMakeFiles/sinrcolor_mac.dir/mac/simulation.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/simulation.cpp.o.d"
  "CMakeFiles/sinrcolor_mac.dir/mac/tdma.cpp.o"
  "CMakeFiles/sinrcolor_mac.dir/mac/tdma.cpp.o.d"
  "libsinrcolor_mac.a"
  "libsinrcolor_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
