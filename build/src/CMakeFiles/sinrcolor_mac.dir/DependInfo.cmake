
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/algorithms.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/algorithms.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/algorithms.cpp.o.d"
  "/root/repo/src/mac/distance_d.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/distance_d.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/distance_d.cpp.o.d"
  "/root/repo/src/mac/link_scheduler.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/link_scheduler.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/link_scheduler.cpp.o.d"
  "/root/repo/src/mac/message_passing.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/message_passing.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/message_passing.cpp.o.d"
  "/root/repo/src/mac/palette_reduction.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/palette_reduction.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/palette_reduction.cpp.o.d"
  "/root/repo/src/mac/simulation.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/simulation.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/simulation.cpp.o.d"
  "/root/repo/src/mac/tdma.cpp" "src/CMakeFiles/sinrcolor_mac.dir/mac/tdma.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_mac.dir/mac/tdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_sinr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
