file(REMOVE_RECURSE
  "libsinrcolor_mac.a"
)
