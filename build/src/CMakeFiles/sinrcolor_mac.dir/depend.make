# Empty dependencies file for sinrcolor_mac.
# This may be replaced when dependencies are built.
