file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_core.dir/core/adaptive.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/adaptive.cpp.o.d"
  "CMakeFiles/sinrcolor_core.dir/core/mw_node.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/mw_node.cpp.o.d"
  "CMakeFiles/sinrcolor_core.dir/core/mw_params.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/mw_params.cpp.o.d"
  "CMakeFiles/sinrcolor_core.dir/core/mw_protocol.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/mw_protocol.cpp.o.d"
  "CMakeFiles/sinrcolor_core.dir/core/report.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/report.cpp.o.d"
  "CMakeFiles/sinrcolor_core.dir/core/timeline.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/timeline.cpp.o.d"
  "CMakeFiles/sinrcolor_core.dir/core/verify.cpp.o"
  "CMakeFiles/sinrcolor_core.dir/core/verify.cpp.o.d"
  "libsinrcolor_core.a"
  "libsinrcolor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
