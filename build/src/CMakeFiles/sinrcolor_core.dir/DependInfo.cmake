
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/adaptive.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/adaptive.cpp.o.d"
  "/root/repo/src/core/mw_node.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/mw_node.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/mw_node.cpp.o.d"
  "/root/repo/src/core/mw_params.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/mw_params.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/mw_params.cpp.o.d"
  "/root/repo/src/core/mw_protocol.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/mw_protocol.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/mw_protocol.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/timeline.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/timeline.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/CMakeFiles/sinrcolor_core.dir/core/verify.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_core.dir/core/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_sinr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
