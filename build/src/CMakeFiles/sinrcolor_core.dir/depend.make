# Empty dependencies file for sinrcolor_core.
# This may be replaced when dependencies are built.
