file(REMOVE_RECURSE
  "libsinrcolor_core.a"
)
