file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_baseline.dir/baseline/aloha.cpp.o"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/aloha.cpp.o.d"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/greedy_coloring.cpp.o"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/greedy_coloring.cpp.o.d"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/local_broadcast.cpp.o"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/local_broadcast.cpp.o.d"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/mw_graph_model.cpp.o"
  "CMakeFiles/sinrcolor_baseline.dir/baseline/mw_graph_model.cpp.o.d"
  "libsinrcolor_baseline.a"
  "libsinrcolor_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
