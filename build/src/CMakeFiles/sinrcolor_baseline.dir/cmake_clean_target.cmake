file(REMOVE_RECURSE
  "libsinrcolor_baseline.a"
)
