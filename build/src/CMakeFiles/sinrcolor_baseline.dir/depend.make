# Empty dependencies file for sinrcolor_baseline.
# This may be replaced when dependencies are built.
