
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/aloha.cpp" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/aloha.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/aloha.cpp.o.d"
  "/root/repo/src/baseline/greedy_coloring.cpp" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/greedy_coloring.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/greedy_coloring.cpp.o.d"
  "/root/repo/src/baseline/local_broadcast.cpp" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/local_broadcast.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/local_broadcast.cpp.o.d"
  "/root/repo/src/baseline/mw_graph_model.cpp" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/mw_graph_model.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_baseline.dir/baseline/mw_graph_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_sinr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
