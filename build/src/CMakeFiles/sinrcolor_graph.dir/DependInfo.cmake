
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coloring.cpp" "src/CMakeFiles/sinrcolor_graph.dir/graph/coloring.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_graph.dir/graph/coloring.cpp.o.d"
  "/root/repo/src/graph/graph_algos.cpp" "src/CMakeFiles/sinrcolor_graph.dir/graph/graph_algos.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_graph.dir/graph/graph_algos.cpp.o.d"
  "/root/repo/src/graph/independent_set.cpp" "src/CMakeFiles/sinrcolor_graph.dir/graph/independent_set.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_graph.dir/graph/independent_set.cpp.o.d"
  "/root/repo/src/graph/packing.cpp" "src/CMakeFiles/sinrcolor_graph.dir/graph/packing.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_graph.dir/graph/packing.cpp.o.d"
  "/root/repo/src/graph/unit_disk_graph.cpp" "src/CMakeFiles/sinrcolor_graph.dir/graph/unit_disk_graph.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_graph.dir/graph/unit_disk_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
