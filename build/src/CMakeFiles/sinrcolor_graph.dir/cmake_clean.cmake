file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_graph.dir/graph/coloring.cpp.o"
  "CMakeFiles/sinrcolor_graph.dir/graph/coloring.cpp.o.d"
  "CMakeFiles/sinrcolor_graph.dir/graph/graph_algos.cpp.o"
  "CMakeFiles/sinrcolor_graph.dir/graph/graph_algos.cpp.o.d"
  "CMakeFiles/sinrcolor_graph.dir/graph/independent_set.cpp.o"
  "CMakeFiles/sinrcolor_graph.dir/graph/independent_set.cpp.o.d"
  "CMakeFiles/sinrcolor_graph.dir/graph/packing.cpp.o"
  "CMakeFiles/sinrcolor_graph.dir/graph/packing.cpp.o.d"
  "CMakeFiles/sinrcolor_graph.dir/graph/unit_disk_graph.cpp.o"
  "CMakeFiles/sinrcolor_graph.dir/graph/unit_disk_graph.cpp.o.d"
  "libsinrcolor_graph.a"
  "libsinrcolor_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
