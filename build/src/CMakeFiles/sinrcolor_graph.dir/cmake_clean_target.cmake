file(REMOVE_RECURSE
  "libsinrcolor_graph.a"
)
