# Empty dependencies file for sinrcolor_graph.
# This may be replaced when dependencies are built.
