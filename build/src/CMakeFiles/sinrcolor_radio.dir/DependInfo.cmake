
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/interference_model.cpp" "src/CMakeFiles/sinrcolor_radio.dir/radio/interference_model.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_radio.dir/radio/interference_model.cpp.o.d"
  "/root/repo/src/radio/simulator.cpp" "src/CMakeFiles/sinrcolor_radio.dir/radio/simulator.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_radio.dir/radio/simulator.cpp.o.d"
  "/root/repo/src/radio/trace.cpp" "src/CMakeFiles/sinrcolor_radio.dir/radio/trace.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_radio.dir/radio/trace.cpp.o.d"
  "/root/repo/src/radio/wakeup.cpp" "src/CMakeFiles/sinrcolor_radio.dir/radio/wakeup.cpp.o" "gcc" "src/CMakeFiles/sinrcolor_radio.dir/radio/wakeup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinrcolor_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_sinr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinrcolor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
