file(REMOVE_RECURSE
  "libsinrcolor_radio.a"
)
