# Empty compiler generated dependencies file for sinrcolor_radio.
# This may be replaced when dependencies are built.
