file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_radio.dir/radio/interference_model.cpp.o"
  "CMakeFiles/sinrcolor_radio.dir/radio/interference_model.cpp.o.d"
  "CMakeFiles/sinrcolor_radio.dir/radio/simulator.cpp.o"
  "CMakeFiles/sinrcolor_radio.dir/radio/simulator.cpp.o.d"
  "CMakeFiles/sinrcolor_radio.dir/radio/trace.cpp.o"
  "CMakeFiles/sinrcolor_radio.dir/radio/trace.cpp.o.d"
  "CMakeFiles/sinrcolor_radio.dir/radio/wakeup.cpp.o"
  "CMakeFiles/sinrcolor_radio.dir/radio/wakeup.cpp.o.d"
  "libsinrcolor_radio.a"
  "libsinrcolor_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
