# Empty compiler generated dependencies file for sinrcolor_common.
# This may be replaced when dependencies are built.
