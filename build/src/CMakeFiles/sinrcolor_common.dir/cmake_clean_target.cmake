file(REMOVE_RECURSE
  "libsinrcolor_common.a"
)
