file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_common.dir/common/cli.cpp.o"
  "CMakeFiles/sinrcolor_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/sinrcolor_common.dir/common/csv.cpp.o"
  "CMakeFiles/sinrcolor_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/sinrcolor_common.dir/common/json.cpp.o"
  "CMakeFiles/sinrcolor_common.dir/common/json.cpp.o.d"
  "CMakeFiles/sinrcolor_common.dir/common/rng.cpp.o"
  "CMakeFiles/sinrcolor_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/sinrcolor_common.dir/common/stats.cpp.o"
  "CMakeFiles/sinrcolor_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/sinrcolor_common.dir/common/table.cpp.o"
  "CMakeFiles/sinrcolor_common.dir/common/table.cpp.o.d"
  "libsinrcolor_common.a"
  "libsinrcolor_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
