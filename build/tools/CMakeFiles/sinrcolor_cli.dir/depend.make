# Empty dependencies file for sinrcolor_cli.
# This may be replaced when dependencies are built.
