file(REMOVE_RECURSE
  "CMakeFiles/sinrcolor_cli.dir/sinrcolor_cli.cpp.o"
  "CMakeFiles/sinrcolor_cli.dir/sinrcolor_cli.cpp.o.d"
  "sinrcolor_cli"
  "sinrcolor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinrcolor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
